"""Unit tests for the object-base runtime (objects, methods, environment)."""

import pytest

from repro.core import ENVIRONMENT_OBJECT, ConservativeConflictSpec, ObjectState
from repro.core.errors import ModelError, UnknownMethodError, UnknownObjectError
from repro.objectbase import (
    MethodDefinition,
    ObjectBase,
    ObjectDefinition,
    build_object_base,
    single_operation_method,
)
from repro.objectbase.adts import counter_definition, register_definition
from repro.objectbase.adts.register import ReadRegister


class TestObjectDefinition:
    def test_initial_state_coerced_to_object_state(self):
        definition = ObjectDefinition("A", {"x": 1})
        assert isinstance(definition.initial_state, ObjectState)
        assert definition.initial_state["x"] == 1

    def test_conflicts_default_to_conservative(self):
        definition = ObjectDefinition("A")
        assert isinstance(definition.conflicts("operation"), ConservativeConflictSpec)
        # Without a step-level spec, the operation-level spec is reused.
        assert definition.conflicts("step") is definition.conflicts("operation")

    def test_unknown_conflict_level_rejected(self):
        with pytest.raises(ModelError):
            ObjectDefinition("A").conflicts("bogus")

    def test_add_and_lookup_method(self):
        definition = ObjectDefinition("A")
        method = MethodDefinition("noop", lambda ctx: iter(()))
        definition.add_method(method)
        assert definition.method("noop") is method

    def test_duplicate_method_rejected(self):
        definition = ObjectDefinition("A")
        definition.add_method(MethodDefinition("noop", lambda ctx: iter(())))
        with pytest.raises(ModelError):
            definition.add_method(MethodDefinition("noop", lambda ctx: iter(())))

    def test_unknown_method_raises(self):
        with pytest.raises(UnknownMethodError):
            ObjectDefinition("A").method("missing")


class TestObjectBase:
    def test_environment_always_present(self):
        base = ObjectBase()
        assert ENVIRONMENT_OBJECT in base
        assert base.environment.name == ENVIRONMENT_OBJECT
        assert len(base) == 0  # the environment is not counted

    def test_register_and_lookup(self):
        base = ObjectBase()
        definition = register_definition("cell")
        base.register(definition)
        assert base.definition("cell") is definition
        assert "cell" in base
        assert base.object_names() == ["cell"]
        assert len(base) == 1

    def test_duplicate_registration_rejected(self):
        base = ObjectBase()
        base.register(register_definition("cell"))
        with pytest.raises(ModelError):
            base.register(register_definition("cell"))

    def test_unknown_object_raises(self):
        with pytest.raises(UnknownObjectError):
            ObjectBase().definition("missing")

    def test_register_transaction_attaches_to_environment(self):
        base = ObjectBase()

        def body(ctx):
            yield ctx.invoke("cell", "read")

        base.register_transaction(MethodDefinition("peek", body))
        assert base.environment.method("peek").name == "peek"
        assert base.method(ENVIRONMENT_OBJECT, "peek").body is body

    def test_initial_states_cover_all_objects(self):
        base = ObjectBase()
        base.register(register_definition("cell", 7))
        base.register(counter_definition("hits", 3))
        states = base.initial_states()
        assert states["cell"]["value"] == 7
        assert states["hits"]["count"] == 3
        assert ENVIRONMENT_OBJECT in states

    def test_conflict_registry_uses_per_object_specs(self):
        base = ObjectBase()
        base.register(register_definition("cell"))
        registry = base.conflicts("operation")
        assert not registry["cell"].operations_conflict(ReadRegister(), ReadRegister())
        # unknown objects fall back to the conservative default
        assert registry["unknown"].operations_conflict(ReadRegister(), ReadRegister())

    def test_describe_summarises_objects(self):
        base = ObjectBase()
        base.register(register_definition("cell"))
        summary = base.describe()
        assert summary["cell"]["methods"] == ["read", "write"]
        assert summary["cell"]["variables"] == ["value"]

    def test_build_object_base_from_list_and_mapping(self):
        definitions = [register_definition("a"), register_definition("b")]
        base = build_object_base(definitions)
        assert base.object_names() == ["a", "b"]
        base_from_mapping = build_object_base({d.name: d for d in definitions[:1]})
        assert base_from_mapping.object_names() == ["a"]


class TestSingleOperationMethod:
    def test_body_yields_one_local_request(self):
        method = single_operation_method("read", ReadRegister, read_only=True)
        assert method.read_only

        class FakeContext:
            def local(self, operation):
                return ("local", operation)

        generator = method.body(FakeContext())
        kind, operation = next(generator)
        assert kind == "local"
        assert isinstance(operation, ReadRegister)
        with pytest.raises(StopIteration) as stop:
            generator.send(42)
        assert stop.value.value == 42
