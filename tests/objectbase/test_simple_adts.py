"""Unit tests for the register, counter and bank-account data types."""

from repro.core import LocalStep, ObjectState
from repro.objectbase.adts.bank_account import (
    BankAccountConflicts,
    BankAccountStepConflicts,
    Deposit,
    GetBalance,
    Withdraw,
    bank_account_definition,
)
from repro.objectbase.adts.counter import AddToCounter, CounterConflicts, GetCount, counter_definition
from repro.objectbase.adts.register import (
    ReadRegister,
    RegisterConflicts,
    WriteRegister,
    register_definition,
)


def step(object_name, operation, value):
    return LocalStep("e", object_name, operation, value)


class TestRegister:
    def test_read_and_write_semantics(self):
        state = register_definition("r", 5).initial_state
        value, state = ReadRegister().apply(state)
        assert value == 5
        written, state = WriteRegister(9).apply(state)
        assert written == 9
        assert state["value"] == 9

    def test_conflict_matrix(self):
        spec = RegisterConflicts()
        assert not spec.operations_conflict(ReadRegister(), ReadRegister())
        assert spec.operations_conflict(ReadRegister(), WriteRegister(1))
        assert spec.operations_conflict(WriteRegister(1), WriteRegister(2))

    def test_definition_methods(self):
        definition = register_definition("r")
        assert set(definition.methods) == {"read", "write"}
        assert definition.methods["read"].read_only
        assert not definition.methods["write"].read_only


class TestCounter:
    def test_add_returns_none_and_updates_count(self):
        state = counter_definition("c", 10).initial_state
        value, state = AddToCounter(5).apply(state)
        assert value is None
        assert state["count"] == 15
        current, _ = GetCount().apply(state)
        assert current == 15

    def test_blind_additions_commute(self):
        spec = CounterConflicts()
        assert not spec.operations_conflict(AddToCounter(1), AddToCounter(2))
        assert spec.operations_conflict(AddToCounter(1), GetCount())
        assert not spec.operations_conflict(GetCount(), GetCount())

    def test_subtract_method_negates_amount(self):
        definition = counter_definition("c", 10)
        assert set(definition.methods) == {"add", "subtract", "get"}


class TestBankAccount:
    def test_deposit_and_withdraw_semantics(self):
        state = bank_account_definition("a", 50).initial_state
        value, state = Deposit(25).apply(state)
        assert value is None
        assert state["balance"] == 75
        success, state = Withdraw(70).apply(state)
        assert success is True
        assert state["balance"] == 5
        failure, state = Withdraw(70).apply(state)
        assert failure is False
        assert state["balance"] == 5
        balance, _ = GetBalance().apply(state)
        assert balance == 5

    def test_operation_level_conflicts_are_conservative(self):
        spec = BankAccountConflicts()
        assert not spec.operations_conflict(Deposit(1), Deposit(2))
        assert spec.operations_conflict(Deposit(1), Withdraw(2))
        assert spec.operations_conflict(Withdraw(1), Withdraw(2))
        assert spec.operations_conflict(GetBalance(), Deposit(1))
        assert not spec.operations_conflict(GetBalance(), GetBalance())

    def test_step_level_exploits_withdraw_outcomes(self):
        spec = BankAccountStepConflicts()
        deposit = step("a", Deposit(10), None)
        successful = step("a", Withdraw(5), True)
        failed = step("a", Withdraw(500), False)
        # Withdrawal first, deposit second: the success cannot be undone.
        assert not spec.steps_conflict(successful, deposit)
        # Deposit first, successful withdrawal second: the success may owe
        # itself to the deposit, so the pair conflicts.
        assert spec.steps_conflict(deposit, successful)
        # A withdrawal that failed despite the deposit commutes with it; the
        # other order does not.
        assert not spec.steps_conflict(deposit, failed)
        assert spec.steps_conflict(failed, deposit)
        # Equal-outcome withdrawals commute; success-then-failure does not.
        assert not spec.steps_conflict(successful, step("a", Withdraw(3), True))
        assert spec.steps_conflict(successful, failed)
        assert not spec.steps_conflict(failed, successful)
        # Reads commute with failed withdrawals only.
        read = step("a", GetBalance(), 100)
        assert not spec.steps_conflict(read, failed)
        assert spec.steps_conflict(read, successful)

    def test_step_level_matches_definition_3_semantics(self):
        # Spot-check the declared step-level commutations against the actual
        # operational semantics on a concrete state.
        from repro.core import steps_commute_on_state

        state = ObjectState({"balance": 100})
        deposit = step("a", Deposit(10), None)
        successful = step("a", Withdraw(40), True)
        assert steps_commute_on_state(successful, deposit, state)

    def test_definition_lists_expected_methods(self):
        definition = bank_account_definition("a", 100)
        assert set(definition.methods) == {"deposit", "withdraw", "balance"}
        assert definition.initial_state["balance"] == 100
