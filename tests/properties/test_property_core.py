"""Property-based tests for the core model (hypothesis).

The central invariants exercised here are the ones the paper proves:

* Theorem 1 — the final state of a legal history does not depend on which
  conflict-consistent topological sort is replayed;
* Theorem 2 — when the serialisation graph of a randomly generated history
  is acyclic, the constructed serial history is legal, serial and
  equivalent to the original;
* the state/value helpers behave like mathematical functions (freeze is
  idempotent, ObjectState updates are persistent).
"""

from __future__ import annotations

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.core import (
    HistoryBuilder,
    ObjectState,
    PerObjectConflicts,
    ReadVariable,
    ReadWriteConflictSpec,
    WriteVariable,
    check_determinacy,
    is_serialisable,
    serialise,
)
from repro.core.values import freeze, values_equal

VARIABLE_NAMES = ("x", "y", "z")
OBJECT_NAMES = ("A", "B", "C")


# ---------------------------------------------------------------------------
# values and states
# ---------------------------------------------------------------------------

scalar_values = st.one_of(st.integers(-5, 5), st.text(max_size=3), st.booleans(), st.none())
nested_values = st.recursive(
    scalar_values,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=2), children, max_size=3),
        st.frozensets(st.integers(-3, 3), max_size=3),
    ),
    max_leaves=8,
)


class TestValueProperties:
    @given(nested_values)
    def test_freeze_is_idempotent(self, value):
        assert freeze(freeze(value)) == freeze(value)

    @given(nested_values)
    def test_freeze_is_hashable(self, value):
        hash(freeze(value))

    @given(nested_values)
    def test_values_equal_is_reflexive(self, value):
        assert values_equal(value, value)

    @given(st.dictionaries(st.sampled_from(VARIABLE_NAMES), scalar_values, max_size=3), st.sampled_from(VARIABLE_NAMES), scalar_values)
    def test_object_state_set_is_persistent(self, variables, name, value):
        state = ObjectState(variables)
        updated = state.set(name, value)
        assert updated[name] == value or (value is None and updated[name] is None)
        for other in variables:
            if other != name:
                assert values_equal(updated[other], variables[other])
        # the original state is untouched
        assert state == ObjectState(variables)


# ---------------------------------------------------------------------------
# random histories over read/write registers
# ---------------------------------------------------------------------------


@st.composite
def interleaved_history(draw):
    """A random legal history of flat read/write transactions.

    Each transaction is a child-method-per-access pattern over a handful of
    objects; the interleaving order is drawn by hypothesis, so the space
    covers both serialisable and non-serialisable executions.
    """
    transaction_count = draw(st.integers(2, 4))
    accesses_per_transaction = draw(st.integers(1, 4))
    builder = HistoryBuilder(
        initial_states={name: ObjectState({"x": 0, "y": 0}) for name in OBJECT_NAMES},
        conflicts=PerObjectConflicts(default=ReadWriteConflictSpec()),
    )
    transactions = [builder.begin_top_level(f"txn{i}") for i in range(transaction_count)]
    # Build a random access plan per transaction, then interleave.
    plans = []
    for index in range(transaction_count):
        plan = []
        for _ in range(accesses_per_transaction):
            object_name = draw(st.sampled_from(OBJECT_NAMES))
            variable = draw(st.sampled_from(VARIABLE_NAMES[:2]))
            is_write = draw(st.booleans())
            plan.append((object_name, variable, is_write, draw(st.integers(0, 9))))
        plans.append(list(reversed(plan)))

    pending = {index for index in range(transaction_count) if plans[index]}
    while pending:
        index = draw(st.sampled_from(sorted(pending)))
        object_name, variable, is_write, value = plans[index].pop()
        child = builder.invoke(transactions[index], object_name, "access")
        if is_write:
            builder.local(child, WriteVariable(variable, value))
        else:
            builder.local(child, ReadVariable(variable, default=0))
        builder.finish(child)
        if not plans[index]:
            pending.discard(index)
    return builder.build(check=True)


class TestHistoryProperties:
    @settings(max_examples=40, deadline=None)
    @given(interleaved_history(), st.integers(0, 1000))
    def test_theorem_1_determinacy(self, history, seed):
        assert check_determinacy(history, attempts=4, seed=seed)

    @settings(max_examples=40, deadline=None)
    @given(interleaved_history())
    def test_builder_histories_are_legal(self, history):
        history.check_legal()

    @settings(max_examples=40, deadline=None)
    @given(interleaved_history())
    def test_theorem_2_constructive(self, history):
        if not is_serialisable(history):
            return  # Theorem 2 says nothing about cyclic graphs
        serial = serialise(history, verify=False)
        serial.check_legal()
        assert serial.is_serial()
        assert serial.equivalent_to(history)

    @settings(max_examples=25, deadline=None)
    @given(interleaved_history())
    def test_final_states_stable_under_replay_shuffles(self, history):
        rng = random_module.Random(0)
        for object_name in history.object_names():
            reference = history.replay(object_name)
            steps = history.local_steps(object_name)
            rng.shuffle(steps)
            # Replaying in a non-topological order is not generally legal,
            # but replaying the canonical topological order twice must agree.
            assert history.replay(object_name) == reference
