"""Property-based soundness of ADT conflict specifications (hypothesis).

For randomly generated states and operation pairs, whenever a conflict
specification declares a pair of steps non-conflicting, transposing the
steps must leave return values and the final state unchanged — Definition 3
made executable.  This complements the exhaustive small-state checks in
``tests/objectbase/test_conflict_soundness.py`` with randomised coverage.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import ObjectState
from repro.core.conflicts import steps_commute_on_state
from repro.core.operations import LocalStep
from repro.objectbase.adts.bank_account import (
    BankAccountStepConflicts,
    Deposit,
    GetBalance,
    Withdraw,
)
from repro.objectbase.adts.fifo_queue import (
    Dequeue,
    Enqueue,
    FifoQueueStepConflicts,
    QueueLength,
)
from repro.objectbase.adts.kv_store import (
    CountEntries,
    Delete,
    Insert,
    KVStoreStepConflicts,
    Lookup,
)
from repro.objectbase.adts.set_object import (
    AddMember,
    Contains,
    RemoveMember,
    SetSize,
    SetStepConflicts,
)


def assert_declared_commutation_is_real(spec, first_operation, second_operation, state, object_name):
    """If the spec says the (ordered) steps commute, verify it semantically."""
    first_value, middle_state = first_operation.apply(state)
    second_value, _ = second_operation.apply(middle_state)
    first = LocalStep("e1", object_name, first_operation, first_value)
    second = LocalStep("e2", object_name, second_operation, second_value)
    if not spec.steps_conflict(first, second):
        assert steps_commute_on_state(first, second, state), (
            f"{first_operation!r};{second_operation!r} declared commuting on {dict(state)!r}"
        )


amounts = st.integers(1, 40)
balances = st.integers(0, 60)


class TestBankAccountStepSpec:
    operations = st.one_of(
        amounts.map(Deposit),
        amounts.map(Withdraw),
        st.just(GetBalance()),
    )

    @settings(max_examples=200, deadline=None)
    @given(balances, operations, operations)
    def test_declared_commutations_hold(self, balance, first, second):
        state = ObjectState({"balance": balance})
        assert_declared_commutation_is_real(
            BankAccountStepConflicts(), first, second, state, "account"
        )


queue_items = st.sampled_from(["a", "b", "c", "d"])


class TestQueueStepSpec:
    operations = st.one_of(
        queue_items.map(Enqueue),
        st.just(Dequeue()),
        st.just(QueueLength()),
    )
    states = st.lists(queue_items, max_size=4).map(
        lambda items: ObjectState({"items": tuple(items)})
    )

    @settings(max_examples=200, deadline=None)
    @given(states, operations, operations)
    def test_declared_commutations_hold(self, state, first, second):
        # Items in the workload are unique; hypothesis may generate duplicate
        # item values, for which value-based identity is too weak, so only
        # test states without duplicates.
        items = state.get("items", ())
        if len(set(items)) != len(items):
            return
        if isinstance(first, Enqueue) and first.item in items:
            return
        if isinstance(second, Enqueue) and (second.item in items or second == first):
            return
        assert_declared_commutation_is_real(
            FifoQueueStepConflicts(), first, second, state, "queue"
        )


kv_keys = st.sampled_from(["k1", "k2", "k3"])


class TestKVStoreStepSpec:
    operations = st.one_of(
        kv_keys.map(Lookup),
        st.tuples(kv_keys, st.integers(0, 9)).map(lambda pair: Insert(*pair)),
        kv_keys.map(Delete),
        st.just(CountEntries()),
    )
    states = st.dictionaries(kv_keys, st.integers(0, 9), max_size=3).map(
        lambda entries: ObjectState({"entries": entries})
    )

    @settings(max_examples=200, deadline=None)
    @given(states, operations, operations)
    def test_declared_commutations_hold(self, state, first, second):
        assert_declared_commutation_is_real(KVStoreStepConflicts(), first, second, state, "kv")


set_elements = st.sampled_from(["p", "q", "r"])


class TestSetStepSpec:
    operations = st.one_of(
        set_elements.map(AddMember),
        set_elements.map(RemoveMember),
        set_elements.map(Contains),
        st.just(SetSize()),
    )
    states = st.frozensets(set_elements, max_size=3).map(
        lambda members: ObjectState({"members": members})
    )

    @settings(max_examples=200, deadline=None)
    @given(states, operations, operations)
    def test_declared_commutations_hold(self, state, first, second):
        assert_declared_commutation_is_real(SetStepConflicts(), first, second, state, "set")
