"""Property-based end-to-end test: schedulers keep random workloads serialisable.

Hypothesis draws workload parameters, a scheduler and an interleaving seed;
whatever it picks, the committed projection of the run must be
serialisable and all submitted transactions must finish (commit or give
up).  This is the operational form of Theorems 3 and 4 under randomised
stress.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import certify_run
from repro.scheduler import make_scheduler
from repro.simulation import (
    BankingWorkload,
    HotspotWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
    SimulationEngine,
)

scheduler_configurations = st.sampled_from(
    [
        ("n2pl", {}),
        ("n2pl-step", {}),
        ("nto", {}),
        ("nto-step", {}),
        ("single-active", {}),
        ("certifier", {}),
        ("modular", {}),
        ("modular", {"default_strategy": "timestamp"}),
    ]
)


def run_to_result(workload, scheduler_name, scheduler_kwargs, seed):
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name, **scheduler_kwargs), seed=seed)
    engine.submit_all(specs)
    return engine.run()


class TestRandomisedSchedulerCorrectness:
    @settings(max_examples=20, deadline=None)
    @given(
        scheduler_configurations,
        st.integers(0, 10_000),
        st.integers(2, 10),
        st.floats(0.0, 1.0),
    )
    def test_hotspot_runs_are_serialisable(self, configuration, seed, transactions, hot_probability):
        scheduler_name, scheduler_kwargs = configuration
        workload = HotspotWorkload(
            transactions=transactions,
            hot_objects=2,
            cold_objects=6,
            hot_probability=hot_probability,
            operations_per_transaction=3,
            seed=seed,
        )
        result = run_to_result(workload, scheduler_name, scheduler_kwargs, seed)
        assert result.metrics.committed + result.metrics.gave_up == transactions
        assert certify_run(result, check_legality=False).serialisable

    @settings(max_examples=15, deadline=None)
    @given(scheduler_configurations, st.integers(0, 10_000), st.integers(2, 8))
    def test_banking_runs_conserve_money_and_serialise(self, configuration, seed, transactions):
        scheduler_name, scheduler_kwargs = configuration
        workload = BankingWorkload(
            accounts=5,
            transactions=transactions,
            transfer_fraction=0.8,
            payroll_fraction=0.0,
            seed=seed,
        )
        result = run_to_result(workload, scheduler_name, scheduler_kwargs, seed)
        if result.metrics.gave_up == 0:
            finals = result.final_states()
            total = sum(
                finals[name]["balance"] for name in finals if name.startswith("account-")
            )
            assert abs(total - workload.expected_total_balance()) < 1e-9
        assert certify_run(result, check_legality=False).serialisable

    @settings(max_examples=15, deadline=None)
    @given(scheduler_configurations, st.integers(0, 10_000), st.integers(1, 3))
    def test_nested_parallel_workloads_are_serialisable(self, configuration, seed, fanout):
        scheduler_name, scheduler_kwargs = configuration
        workload = RandomOperationsWorkload(
            registers=6,
            transactions=5,
            operations_per_transaction=4,
            nesting_depth=3,
            parallel_fanout=fanout,
            seed=seed,
        )
        result = run_to_result(workload, scheduler_name, scheduler_kwargs, seed)
        assert certify_run(result, check_legality=False).serialisable

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 8))
    def test_queue_workloads_never_lose_items_under_step_locking(self, seed, initial_depth):
        workload = QueueWorkload(
            queues=2, producers=4, consumers=4, initial_depth=initial_depth, seed=seed
        )
        result = run_to_result(workload, "n2pl-step", {}, seed)
        assert certify_run(result, check_legality=False).serialisable
        finals = result.final_states()
        remaining = sum(
            len(finals[name]["items"]) for name in finals if name.startswith("queue-")
        )
        assert remaining <= workload.queues * initial_depth + workload.total_items_produced()
