"""Property-based oracles for the indexed certification machinery.

PR 2 rewrote the serialisation-graph builders and the history order
queries on top of persistent indexes and sorted-interval sweeps, keeping
the original permutation implementations as oracles.  These tests generate
random *nested* histories (with internal parallelism, so incomparable
siblings and non-trivial disjoint ancestors actually occur) and assert:

* indexed ``order_pairs`` / ``precedes`` agree with the retained legacy
  implementations (``order_pairs_legacy`` / ``precedes_legacy``);
* the sweep-based ``serialisation_graph`` / ``sg_local`` / ``sg_mesg``
  reproduce the legacy from-scratch graphs (``check=True`` raises on any
  divergence);
* :class:`~repro.core.graphs.IncrementalSG`, fed the steps in commit
  order, yields the same edges, reasons and cycle verdict as the
  from-scratch builder (networkx only as a cross-check).
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.core import (
    History,
    HistoryBuilder,
    ObjectState,
    PerObjectConflicts,
    ReadVariable,
    ReadWriteConflictSpec,
    WriteVariable,
    incremental_serialisation_graph,
    is_acyclic,
    serialisation_graph,
    serialisation_graph_legacy,
    sg_local,
    sg_mesg,
)

OBJECT_NAMES = ("A", "B", "C")
VARIABLE_NAMES = ("x", "y")


@st.composite
def nested_history(draw):
    """A random legal history of nested transactions with parallel children.

    Each top-level transaction runs a few accesses; an access invokes a
    child method execution which issues one or two local read/write steps
    and is invoked either sequentially or in parallel with its predecessor
    (``after=[]``), so the execution forest exhibits both comparable and
    incomparable sibling pairs.  The interleaving across transactions is
    drawn by hypothesis.
    """
    transaction_count = draw(st.integers(2, 4))
    accesses_per_transaction = draw(st.integers(1, 3))
    builder = HistoryBuilder(
        initial_states={name: ObjectState({"x": 0, "y": 0}) for name in OBJECT_NAMES},
        conflicts=PerObjectConflicts(default=ReadWriteConflictSpec()),
    )
    transactions = [builder.begin_top_level(f"txn{i}") for i in range(transaction_count)]

    plans = []
    for _ in range(transaction_count):
        plan = []
        for _ in range(accesses_per_transaction):
            plan.append(
                (
                    draw(st.sampled_from(OBJECT_NAMES)),
                    draw(st.sampled_from(VARIABLE_NAMES)),
                    draw(st.booleans()),  # write?
                    draw(st.integers(0, 9)),
                    draw(st.booleans()),  # parallel sibling?
                    draw(st.booleans()),  # second local step?
                )
            )
        plans.append(list(reversed(plan)))

    pending = {index for index in range(transaction_count) if plans[index]}
    while pending:
        index = draw(st.sampled_from(sorted(pending)))
        object_name, variable, is_write, value, parallel, extra_step = plans[index].pop()
        child = builder.invoke(
            transactions[index],
            object_name,
            "access",
            after=[] if parallel else None,
        )
        if is_write:
            builder.local(child, WriteVariable(variable, value))
        else:
            builder.local(child, ReadVariable(variable, default=0))
        if extra_step:
            builder.local(child, ReadVariable(variable, default=0))
        builder.finish(child)
        if not plans[index]:
            pending.discard(index)
    return builder.build(check=True)


class TestIndexedHistoryOracles:
    @settings(max_examples=40, deadline=None)
    @given(nested_history())
    def test_order_pairs_sweep_matches_legacy(self, history):
        assert history.order_pairs() == history.order_pairs_legacy()

    @settings(max_examples=30, deadline=None)
    @given(nested_history())
    def test_precedes_matches_legacy_on_every_pair(self, history):
        steps = history.steps()
        for first, second in itertools.permutations(steps, 2):
            assert history.precedes(first, second) == history.precedes_legacy(first, second)

    @settings(max_examples=20, deadline=None)
    @given(nested_history())
    def test_order_pairs_representation_matches_legacy(self, history):
        # Re-encode the same history through explicit order pairs to
        # exercise the reachability (non-interval) code path.
        encoded = History(
            list(history.executions.values()),
            history.initial_states,
            conflicts=history.conflicts,
            order_pairs=history.order_pairs(),
        )
        steps = encoded.steps()
        for first, second in itertools.permutations(steps, 2):
            assert encoded.precedes(first, second) == encoded.precedes_legacy(first, second)
            assert encoded.precedes(first, second) == history.precedes(first, second)

    @settings(max_examples=30, deadline=None)
    @given(nested_history())
    def test_ordered_step_pairs_sweep_is_exact(self, history):
        for object_name in history.object_names():
            steps = history.local_steps(object_name)
            swept = set()
            for first, second in history.ordered_step_pairs(steps):
                swept.add((first.step_id, second.step_id))
            expected = {
                (first.step_id, second.step_id)
                for first, second in itertools.permutations(steps, 2)
                if history.precedes_legacy(first, second)
            }
            assert swept == expected


class TestGraphBuilderOracles:
    @settings(max_examples=30, deadline=None)
    @given(nested_history())
    def test_serialisation_graph_matches_legacy(self, history):
        serialisation_graph(history, check=True)  # raises on divergence

    @settings(max_examples=30, deadline=None)
    @given(nested_history())
    def test_per_object_graphs_match_legacy(self, history):
        for object_name in sorted(history.object_names() | {"environment"}):
            sg_local(history, object_name, check=True)
            sg_mesg(history, object_name, check=True)

    @settings(max_examples=30, deadline=None)
    @given(nested_history())
    def test_incremental_sg_matches_from_scratch(self, history):
        incremental = incremental_serialisation_graph(history, check=True)
        reference = serialisation_graph_legacy(history)
        assert incremental.is_acyclic == is_acyclic(reference)

    @settings(max_examples=20, deadline=None)
    @given(nested_history())
    def test_incremental_sg_cycle_verdict_matches_networkx(self, history):
        incremental = incremental_serialisation_graph(history)
        assert incremental.is_acyclic == is_acyclic(incremental.graph)
        if not incremental.is_acyclic:
            source, target = incremental.cycle_edge
            assert incremental.graph.has_edge(source, target)

    def test_incremental_sg_handles_cyclic_temporal_order(self):
        # An (illegal) history whose < is cyclic among conflicting local
        # steps admits no linear extension, so the feed order falls back to
        # step-id order; both directions of each pair must still be
        # classified or the cycle-closing edge is silently dropped.
        from repro.core import MethodExecution
        from repro.core.executions import ENVIRONMENT_OBJECT
        from repro.core.operations import LocalStep, MessageStep

        t1 = MethodExecution("T1", ENVIRONMENT_OBJECT, "m")
        t2 = MethodExecution("T2", ENVIRONMENT_OBJECT, "m")
        m1 = MessageStep("T1", "A", "w")
        t1.add_step(m1)
        m2 = MessageStep("T2", "A", "w")
        t2.add_step(m2)
        c1 = MethodExecution("T1.1", "A", "w", parent_id="T1", invoking_step_id=m1.step_id)
        c2 = MethodExecution("T2.1", "A", "w", parent_id="T2", invoking_step_id=m2.step_id)
        s1 = LocalStep("T1.1", "A", WriteVariable("x", 1), 1)
        c1.add_step(s1)
        s2 = LocalStep("T2.1", "A", WriteVariable("x", 2), 2)
        c2.add_step(s2)
        history = History(
            [t1, t2, c1, c2],
            {"A": {}},
            conflicts=PerObjectConflicts(default=ReadWriteConflictSpec()),
            order_pairs=[(s1.step_id, s2.step_id), (s2.step_id, s1.step_id)],
        )
        reference = serialisation_graph_legacy(history)
        incremental = incremental_serialisation_graph(history)
        assert incremental.is_acyclic == is_acyclic(reference) is False
        assert set(incremental.graph.edges) == set(reference.edges)
