"""Property-based tests for the B-tree index (hypothesis).

The B-tree must behave exactly like a sorted mapping while maintaining its
structural invariants (sorted keys, bounded node sizes, uniform leaf
depth) after arbitrary interleavings of insertions and deletions.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.objectbase.adts.btree import (
    empty_tree,
    tree_delete,
    tree_height,
    tree_insert,
    tree_items,
    tree_range,
    tree_search,
    tree_size,
    validate_tree,
)

keys = st.integers(0, 120)
values = st.integers(0, 10_000)
degrees = st.integers(2, 5)


class TestBulkProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(keys, values), max_size=60), degrees)
    def test_insertions_match_dict_semantics(self, items, degree):
        root = empty_tree()
        model: dict[int, int] = {}
        for key, value in items:
            root = tree_insert(root, key, value, degree)
            model[key] = value
        validate_tree(root, degree)
        assert dict(tree_items(root)) == model
        assert tree_size(root) == len(model)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(st.booleans(), keys, values), max_size=80),
        degrees,
    )
    def test_mixed_insert_delete_matches_dict(self, actions, degree):
        root = empty_tree()
        model: dict[int, int] = {}
        for is_insert, key, value in actions:
            if is_insert:
                root = tree_insert(root, key, value, degree)
                model[key] = value
            else:
                root, removed = tree_delete(root, key, degree)
                assert removed == (key in model)
                model.pop(key, None)
            validate_tree(root, degree)
        assert dict(tree_items(root)) == model

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(keys, values), max_size=50), keys, keys, degrees)
    def test_range_scan_matches_filtered_dict(self, items, low, high, degree):
        low, high = min(low, high), max(low, high)
        root = empty_tree()
        model: dict[int, int] = {}
        for key, value in items:
            root = tree_insert(root, key, value, degree)
            model[key] = value
        expected = sorted((key, value) for key, value in model.items() if low <= key <= high)
        assert tree_range(root, low, high) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.sets(keys, max_size=80), degrees)
    def test_height_is_logarithmic(self, key_set, degree):
        root = empty_tree()
        for key in key_set:
            root = tree_insert(root, key, key, degree)
        height = tree_height(root)
        # Every node except the root holds at least degree-1 keys, so the
        # height is O(log_degree(n)) — use a generous bound.
        assert height <= 2 + (len(key_set) // max(1, degree - 1))
        if len(key_set) > (2 * degree - 1):
            assert height >= 2


class BTreeMachine(RuleBasedStateMachine):
    """Stateful comparison of the B-tree against a plain dict."""

    def __init__(self):
        super().__init__()
        self.degree = 2
        self.root = empty_tree()
        self.model: dict[int, int] = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.root = tree_insert(self.root, key, value, self.degree)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.root, removed = tree_delete(self.root, key, self.degree)
        assert removed == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys)
    def search(self, key):
        assert tree_search(self.root, key) == self.model.get(key)

    @invariant()
    def structure_is_valid(self):
        validate_tree(self.root, self.degree)
        assert tree_size(self.root) == len(self.model)


BTreeMachine.TestCase.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
TestBTreeStateful = BTreeMachine.TestCase
