"""Oracle tests: streaming certification equals post-hoc certification.

The :class:`~repro.analysis.streaming.StreamingCertifier` grows ``SG(h)``
at commit time and prunes certified, frontier-unreachable transactions as
the run progresses — so its rolling report is built from a *window*, never
the whole history.  Its contract is nevertheless bit-for-bit equality
with post-hoc :func:`~repro.analysis.certify.certify_run` on every
verdict, counter, the serial order, the cycle witness and the violation
strings (``sg_edges`` alone is exempt: the streaming graph drops edges
incident to pruned transactions and reports the retained count).

Three layers of evidence:

* a hypothesis property sweeping scheduler x restart-policy x gate-mode
  x batch/stream x seed over a genuinely contended workload, with the
  engine garbage-collecting (and therefore the certifier pruning)
  mid-stream;
* a longer deterministic stream asserting the certifier actually pruned
  (a zero prune count would make the window equivalence vacuous);
* direct-feed histories with *injected* violations — a conflict cycle
  whose edges span a GC boundary, and a forged return value replayed
  away before its transaction is pruned — caught identically by both
  certifiers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import StreamingCertifier, certify_history, certify_run
from repro.core import ObjectState, ReadVariable, WriteVariable
from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine
from repro.simulation.workloads import make_workload

from tests.conftest import fresh_builder

#: Every report field the streaming certifier promises bit-for-bit
#: (``sg_edges`` is the documented exception — see the module docstring).
COMPARED_FIELDS = (
    "legal",
    "serialisable",
    "theorem5_holds",
    "violations",
    "serial_order",
    "cycle",
    "committed_transactions",
    "committed_executions",
    "committed_local_steps",
    "sg_nodes",
)

#: Schedulers whose factories accept the CommitGate ``gate_mode`` axis.
GATE_AWARE = {"nto", "nto-step", "certifier", "modular"}

scheduler_names = st.sampled_from(
    ["n2pl", "n2pl-step", "nto", "nto-step", "single-active", "certifier", "modular"]
)
restart_policies = st.sampled_from(["immediate", "backoff", "ordered"])
gate_modes = st.sampled_from(["cascade", "aca"])


def assert_reports_equal(streamed, oracle):
    for field in COMPARED_FIELDS:
        assert getattr(streamed, field) == getattr(oracle, field), (
            f"{field}: streaming {getattr(streamed, field)!r} "
            f"!= post-hoc {getattr(oracle, field)!r}"
        )


def certified_run(
    scheduler,
    *,
    policy,
    gate_mode,
    stream,
    seed,
    transactions=14,
    gc_interval=3,
):
    """A contended run with online certification and a tiny GC interval.

    ``gc_interval=3`` forces many mid-run pruning passes, so the
    equivalence below is exercised against a heavily collected window,
    not a luckily complete one.
    """
    kwargs = {"restart_policy": policy}
    if scheduler in GATE_AWARE:
        kwargs["gate_mode"] = gate_mode
    workload = make_workload(
        "hotspot",
        transactions=transactions,
        hot_objects=2,
        cold_objects=8,
        operations_per_transaction=3,
        hot_probability=0.7,
        seed=seed,
    )
    base, specs = workload.build()
    engine = SimulationEngine(
        base,
        make_scheduler(scheduler, **kwargs),
        seed=seed,
        gc_interval=gc_interval,
        certify="stream",
    )
    if stream:
        engine.submit_stream(specs, {"name": "poisson", "rate": 0.2})
    else:
        engine.submit_all(specs)
    return engine, engine.run()


class TestStreamingEqualsPostHoc:
    @settings(max_examples=40, deadline=None)
    @given(
        scheduler=scheduler_names,
        policy=restart_policies,
        gate_mode=gate_modes,
        stream=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    def test_rolling_report_equals_certify_run(
        self, scheduler, policy, gate_mode, stream, seed
    ):
        engine, result = certified_run(
            scheduler, policy=policy, gate_mode=gate_mode, stream=stream, seed=seed
        )
        oracle = certify_run(result, check_legality=True)
        assert_reports_equal(result.streaming_report, oracle)

    def test_long_stream_prunes_and_still_matches(self):
        engine, result = certified_run(
            "nto-step",
            policy="backoff",
            gate_mode="cascade",
            stream=True,
            seed=7,
            transactions=120,
        )
        # The window equivalence is only meaningful if the window was
        # actually collected mid-stream.
        assert engine._certifier.gc_pruned > 0
        oracle = certify_run(result, check_legality=True)
        assert_reports_equal(result.streaming_report, oracle)

    def test_finalise_is_memoised(self):
        _, result = certified_run(
            "n2pl", policy="immediate", gate_mode="cascade", stream=False, seed=3
        )
        assert result.streaming_report is result.streaming_report


def _write_child(builder, top_id, object_name, value):
    """One child method on ``object_name`` issuing a single write."""
    child = builder.invoke(top_id, object_name, "set")
    builder.local(child, WriteVariable("x", value))
    builder.finish(child, "ok")
    return child.execution_id


def _feed_commit(certifier, builder, top_id, child_ids):
    """Snapshot a committed subtree into the certifier, builder-style."""
    executions = [
        builder.execution_record(execution_id)
        for execution_id in (top_id, *child_ids)
    ]
    certifier.note_commit(
        top_id,
        executions,
        builder.intervals_for(executions),
        resolve_stamp=builder.clock,
    )


class TestInjectedViolationsSpanGC:
    """Hand-built histories whose defects straddle a mid-feed GC pass."""

    OBJECTS = ("A", "B", "C", "F1", "F2", "F3", "F4", "F5")

    def _builder_and_certifier(self):
        builder = fresh_builder({name: {"x": 0} for name in self.OBJECTS})
        certifier = StreamingCertifier(
            builder.conflicts,
            initial_states={name: ObjectState({"x": 0}) for name in self.OBJECTS},
        )
        return builder, certifier

    def _commit_fillers(self, builder, certifier, count=5, forge_on=None):
        """Commit ``count`` no-conflict transactions (T1..Tcount).

        With ``forge_on`` set, that filler's object records a read whose
        return value is forged — an injected Definition 6 condition-3
        violation destined to be replayed (and its transaction pruned)
        at the next GC pass.
        """
        for index in range(1, count + 1):
            top = builder.begin_top_level().execution_id
            certifier.note_begin(top, builder.clock)
            object_name = f"F{index}"
            child = builder.invoke(top, object_name, "probe")
            if object_name == forge_on:
                builder.local(child, ReadVariable("x"), return_value=999)
            else:
                builder.local(child, WriteVariable("x", index))
            builder.finish(child, "ok")
            _feed_commit(certifier, builder, top, [child.execution_id])

    def test_conflict_cycle_spanning_a_gc_boundary(self):
        builder, certifier = self._builder_and_certifier()
        self._commit_fillers(builder, certifier)

        # T6 begins, writes A, and stays unresolved: it pins the frontier
        # through the GC pass while the cycle is still half-built.
        t6 = builder.begin_top_level().execution_id
        certifier.note_begin(t6, builder.clock)
        t6_a = _write_child(builder, t6, "A", 60)

        # T7 writes A (after T6's write -> edge T6 -> T7) and B; commits.
        t7 = builder.begin_top_level().execution_id
        certifier.note_begin(t7, builder.clock)
        t7_children = [
            _write_child(builder, t7, "A", 70),
            _write_child(builder, t7, "B", 70),
        ]
        _feed_commit(certifier, builder, t7, t7_children)

        # The GC boundary: the settled fillers are emitted and pruned,
        # while T6 (live) and T7 (in T6's frontier) are retained.
        pruned = certifier.collect_garbage()
        assert pruned > 0, "fillers should be pruned mid-cycle"
        assert certifier.gc_pruned == pruned

        # T8 writes B (edge T7 -> T8) and C; commits after the boundary.
        t8 = builder.begin_top_level().execution_id
        certifier.note_begin(t8, builder.clock)
        t8_children = [
            _write_child(builder, t8, "B", 80),
            _write_child(builder, t8, "C", 80),
        ]
        _feed_commit(certifier, builder, t8, t8_children)

        # T6 finally writes C (after T8's -> edge T8 -> T6) and commits,
        # closing the cycle T6 -> T7 -> T8 -> T6 with edges installed on
        # both sides of the GC pass.
        t6_c = _write_child(builder, t6, "C", 61)
        _feed_commit(certifier, builder, t6, [t6_a, t6_c])

        streamed = certifier.finalise()
        oracle = certify_history(builder.build(), check_legality=True)
        assert streamed.serialisable is False
        assert oracle.serialisable is False
        assert streamed.cycle is not None
        assert {"T6", "T7", "T8"} <= set(streamed.cycle)
        assert_reports_equal(streamed, oracle)

    def test_forged_return_value_replayed_before_pruning(self):
        builder, certifier = self._builder_and_certifier()
        self._commit_fillers(builder, certifier, count=3, forge_on="F2")

        # A later transaction pins the settle threshold past the fillers,
        # so the GC pass replays (and catches) the forged read before
        # pruning the transaction that issued it.
        t4 = builder.begin_top_level().execution_id
        certifier.note_begin(t4, builder.clock)
        pruned = certifier.collect_garbage()
        assert pruned > 0, "the forged filler should be pruned after replay"
        t4_a = _write_child(builder, t4, "A", 40)
        _feed_commit(certifier, builder, t4, [t4_a])

        streamed = certifier.finalise()
        oracle = certify_history(builder.build(), check_legality=True)
        assert streamed.legal is False
        assert oracle.legal is False
        assert streamed.violations == oracle.violations
        assert any("F2" in violation for violation in streamed.violations)
        assert_reports_equal(streamed, oracle)
