"""Tests for run certification, history statistics and report formatting."""

import pytest

from repro.analysis import (
    certify_history,
    certify_run,
    format_comparison,
    format_table,
    history_statistics,
    relative_change,
    summarise_sweep,
)
from repro.scheduler import Scheduler, make_scheduler
from repro.simulation import BankingWorkload, HotspotWorkload, SimulationEngine

from tests.conftest import two_transaction_history


def run_workload(workload, scheduler, seed=0):
    base, specs = workload.build()
    engine = SimulationEngine(base, scheduler, seed=seed)
    engine.submit_all(specs)
    return engine.run()


class TestCertifyHistory:
    def test_serialisable_history_passes(self, serialisable_history):
        report = certify_history(serialisable_history)
        assert report.correct
        assert report.legal and report.serialisable and report.theorem5_holds
        assert report.violations == []
        assert report.serial_order == ("T1", "T2")
        assert report.committed_transactions == 2

    def test_non_serialisable_history_fails_with_reasons(self, non_serialisable_history):
        report = certify_history(non_serialisable_history)
        assert not report.correct
        assert not report.serialisable
        assert any("cycle" in violation for violation in report.violations)
        assert report.as_dict()["correct"] is False

    def test_legality_check_can_be_skipped(self, serialisable_history):
        report = certify_history(serialisable_history, check_legality=False)
        assert report.legal  # trivially true when not checked
        assert report.serialisable


class TestCertifyRun:
    def test_n2pl_run_certifies(self):
        workload = BankingWorkload(accounts=6, transactions=10, seed=2)
        result = run_workload(workload, make_scheduler("n2pl"))
        report = certify_run(result)
        assert report.correct
        assert report.committed_transactions == result.metrics.committed

    def test_pass_through_run_is_flagged(self):
        workload = HotspotWorkload(
            transactions=10, hot_objects=2, cold_objects=4, hot_probability=0.9, seed=3
        )
        result = run_workload(workload, Scheduler())
        report = certify_run(result, check_legality=False)
        assert not report.serialisable
        assert not report.correct


class TestHistoryStatistics:
    def test_statistics_of_two_transaction_history(self):
        history = two_transaction_history(compatible_orders=True)
        stats = history_statistics(history)
        assert stats.top_level_executions == 2
        assert stats.executions == 6
        assert stats.local_steps == 8
        assert stats.message_steps == 4
        assert stats.objects_touched == 2
        assert stats.max_nesting_depth == 1
        assert stats.steps_per_object == {"A": 4, "B": 4}
        assert stats.executions_per_object["environment"] == 2
        assert stats.as_dict()["executions"] == 6

    def test_statistics_of_empty_history(self):
        from repro.core import History

        stats = history_statistics(History([], {}))
        assert stats.executions == 0
        assert stats.max_nesting_depth == 0


class TestReportFormatting:
    rows = [
        {"scheduler": "n2pl", "throughput": 0.123456, "committed": 10, "ok": True},
        {"scheduler": "nto", "throughput": 0.2, "committed": 12, "ok": False},
    ]

    def test_format_table_aligns_columns(self):
        table = format_table(self.rows, ["scheduler", "throughput", "committed", "ok"])
        lines = table.splitlines()
        assert lines[0].startswith("scheduler")
        assert "0.1235" in table
        assert "yes" in table and "no" in table

    def test_format_table_with_title_and_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")
        titled = format_table(self.rows, title="Results")
        assert titled.splitlines()[0] == "Results"

    def test_format_comparison_selects_columns(self):
        table = format_comparison(self.rows, "scheduler", ["throughput"])
        assert "committed" not in table

    def test_relative_change(self):
        assert relative_change(10, 15) == pytest.approx(0.5)
        assert relative_change(0, 15) == 0.0

    def test_summarise_sweep(self):
        summary = summarise_sweep(self.rows, key="scheduler", metric="throughput")
        assert summary["best"] == "nto"
        assert summary["min"] == pytest.approx(0.123456)
        assert summarise_sweep([], key="scheduler", metric="throughput")["best"] is None
