"""Shared fixtures and history-construction helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.core import (
    HistoryBuilder,
    ObjectState,
    PerObjectConflicts,
    ReadVariable,
    ReadWriteConflictSpec,
    WriteVariable,
)


def read_write_conflicts() -> PerObjectConflicts:
    """A conflict registry using variable-granularity read/write conflicts."""
    return PerObjectConflicts(default=ReadWriteConflictSpec())


def fresh_builder(objects: dict[str, dict] | None = None) -> HistoryBuilder:
    """A builder over read/write objects with the given initial variables."""
    initial = {name: ObjectState(variables) for name, variables in (objects or {}).items()}
    return HistoryBuilder(initial_states=initial, conflicts=read_write_conflicts())


def increment_via_read_write(builder: HistoryBuilder, transaction, object_name: str) -> None:
    """Issue a child method on ``object_name`` that reads x and writes x+1."""
    child = builder.invoke(transaction, object_name, "bump")
    read = builder.local(child, ReadVariable("x"))
    builder.local(child, WriteVariable("x", read.return_value + 1))
    builder.finish(child, "ok")


def two_transaction_history(compatible_orders: bool):
    """The paper's Section 2 example: T1 and T2 both access objects A and B.

    With ``compatible_orders=True`` both objects serialise T1 before T2 and
    the history is serialisable; with ``False`` object B serialises them the
    other way round and the overall history is not serialisable even though
    each object's own computation is.
    """
    builder = fresh_builder({"A": {"x": 0}, "B": {"x": 0}})
    first = builder.begin_top_level("t1")
    second = builder.begin_top_level("t2")
    increment_via_read_write(builder, first, "A")
    increment_via_read_write(builder, second, "A")
    if compatible_orders:
        increment_via_read_write(builder, first, "B")
        increment_via_read_write(builder, second, "B")
    else:
        increment_via_read_write(builder, second, "B")
        increment_via_read_write(builder, first, "B")
    return builder.build(check=True)


@pytest.fixture
def serialisable_history():
    return two_transaction_history(compatible_orders=True)


@pytest.fixture
def non_serialisable_history():
    return two_transaction_history(compatible_orders=False)
