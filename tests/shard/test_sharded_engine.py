"""Sharded engine: oracle identity, transport bit-identity, cross-shard 2PC.

The three claims that make sharding safe to use for experiments:

* ``shards=1`` is the plain engine, bit for bit — same metrics, same
  committed ids, same final states;
* ``multiprocess`` is the in-process oracle, bit for bit — the transport
  moves bytes, never behaviour;
* cross-shard transactions commit through the coordinator's two-phase
  protocol and every shard's committed projection stays serialisable
  (the paper's modularity theorem applied at the shard level), including
  under distributed deadlocks broken by the stall breaker.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.shard import ShardMap, ShardedEngine
from repro.sweep import ScenarioSpec, run_scenario
from repro.sweep.runner import build_engine

SCHEDULERS = ("n2pl", "nto-step", "certifier", "modular")

#: Pins the two hot objects to shard 0 so crossing happens through the
#: cold tail — commits flow while still exercising remote invocations.
COLOCATED_HOT = {"hot-0": 0, "hot-1": 0}

#: Splits the hot pair across shards: most transactions become
#: cross-shard and distributed deadlocks are common — the stall breaker's
#: stress diet.
SPLIT_HOT = {"hot-0": 0, "hot-1": 1}


def make_spec(
    scheduler: str,
    seed: int,
    *,
    transactions: int = 40,
    stream: bool = False,
    shards: int = 1,
    assignment: dict[str, int] | None = None,
    shard_mode: str = "inprocess",
    gc_interval: int | None = None,
) -> ScenarioSpec:
    inner = {
        "transactions": transactions,
        "hot_objects": 2,
        "cold_objects": 16,
        "operations_per_transaction": 2,
        "hot_probability": 0.25,
        "use_service_layer": False,
        "seed": seed,
    }
    if stream:
        workload = "hotspot-stream"
        workload_params = {
            "inner_params": inner,
            "arrival": "poisson",
            "arrival_params": {"rate": 0.05},
        }
    else:
        workload = "hotspot"
        workload_params = inner
    engine_params = {}
    if gc_interval is not None:
        engine_params["gc_interval"] = gc_interval
    return ScenarioSpec(
        workload=workload,
        scheduler=scheduler,
        seed=seed,
        workload_params=workload_params,
        scheduler_kwargs={"restart_policy": "backoff"},
        engine_params=engine_params,
        shards=shards,
        # Only meaningful on sharded specs; most tests hand ShardedEngine an
        # explicit ShardMap instead and leave the spec fields at defaults.
        shard_assignment=dict(assignment or {}) if shards > 1 else {},
        shard_mode=shard_mode,
        certify=True,
    )


def plain_outcome(spec: ScenarioSpec):
    result = build_engine(spec).run()
    return (
        result.metrics.as_dict(),
        tuple(result.committed_transaction_ids),
        {name: dict(state) for name, state in result.final_states().items()},
    )


def sharded_outcome(result):
    return (
        result.metrics.as_dict(),
        result.committed_transaction_ids,
        result.final_states(),
    )


class TestSingleShardOracle:
    """``shards=1`` must reproduce the unsharded engine bit for bit."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_closed_batch_identity(self, scheduler):
        spec = make_spec(scheduler, seed=101)
        sharded = ShardedEngine(spec, ShardMap(shards=1)).run()
        assert sharded_outcome(sharded) == plain_outcome(spec)

    @pytest.mark.parametrize("scheduler", ("n2pl", "certifier"))
    def test_streamed_arrivals_identity(self, scheduler):
        spec = make_spec(scheduler, seed=202, stream=True, gc_interval=16)
        sharded = ShardedEngine(spec, ShardMap(shards=1)).run()
        assert sharded_outcome(sharded) == plain_outcome(spec)

    def test_single_shard_has_no_cross_traffic(self):
        spec = make_spec("n2pl", seed=303)
        result = ShardedEngine(spec, ShardMap(shards=1)).run()
        assert result.metrics.remote_invocations == 0
        assert result.coordinator["cross_transactions"] == 0


class TestTransportBitIdentity:
    """The multiprocess transport must match the in-process oracle exactly."""

    @pytest.mark.parametrize("shards", (2, 4))
    def test_modes_agree_per_shard(self, shards):
        spec = make_spec("n2pl", seed=404, assignment=COLOCATED_HOT)
        shard_map = ShardMap(shards=shards, assignment=COLOCATED_HOT)
        inproc = ShardedEngine(spec, shard_map).run()
        multi = ShardedEngine(
            spec, shard_map, mode="multiprocess", mp_context="fork"
        ).run()
        assert inproc.rounds == multi.rounds
        assert inproc.coordinator == multi.coordinator
        for a, b in zip(inproc.shards, multi.shards):
            assert a.metrics.as_dict() == b.metrics.as_dict()
            assert a.committed == b.committed
            assert a.aborted == b.aborted
            assert a.final_states == b.final_states
            assert a.scheduler_description == b.scheduler_description
            assert a.serialisable is True and b.serialisable is True

    def test_modes_agree_on_streams(self):
        spec = make_spec("nto-step", seed=505, stream=True, gc_interval=16)
        shard_map = ShardMap(shards=2, assignment=COLOCATED_HOT)
        inproc = ShardedEngine(spec, shard_map).run()
        multi = ShardedEngine(
            spec, shard_map, mode="multiprocess", mp_context="fork"
        ).run()
        assert sharded_outcome(inproc) == sharded_outcome(multi)
        assert inproc.coordinator == multi.coordinator

    def test_repeated_runs_are_identical(self):
        spec = make_spec("certifier", seed=606, assignment=COLOCATED_HOT)
        shard_map = ShardMap(shards=2, assignment=COLOCATED_HOT)
        first = ShardedEngine(spec, shard_map).run()
        second = ShardedEngine(spec, shard_map).run()
        assert sharded_outcome(first) == sharded_outcome(second)
        assert first.coordinator == second.coordinator


class TestCrossShardExecution:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_cross_transactions_commit_and_certify(self, scheduler):
        spec = make_spec(scheduler, seed=707, assignment=COLOCATED_HOT)
        result = ShardedEngine(spec, ShardMap(shards=2, assignment=COLOCATED_HOT)).run()
        metrics = result.metrics
        assert metrics.remote_invocations > 0, "no transaction crossed a shard"
        assert result.coordinator["commits_decided"] > 0
        assert metrics.committed + metrics.gave_up == 40
        assert result.serialisable is True
        for outcome in result.shards:
            assert outcome.serialisable is True
            # The coordinator's forget directives bound tracker memory.
            assert outcome.tracker_live_records <= metrics.in_flight_peak * 8

    def test_split_hotspot_terminates_under_distributed_deadlock(self):
        # Hot objects on different shards and taken by nearly every
        # transaction: locks are held on one shard while requesting the
        # other, so distributed deadlocks (invisible to either local
        # waits-for graph) are guaranteed.  The run must still terminate
        # with every arrival resolved and every shard serialisable.
        spec = make_spec("n2pl", seed=808, transactions=30, assignment=SPLIT_HOT)
        spec.workload_params.update({"hot_probability": 0.9, "cold_objects": 8})
        result = ShardedEngine(spec, ShardMap(shards=2, assignment=SPLIT_HOT)).run()
        metrics = result.metrics
        assert metrics.committed + metrics.gave_up == 30
        assert result.serialisable is True
        assert (
            result.coordinator["stall_aborts"] + result.coordinator["cycle_aborts"] > 0
        ), "split-hotspot run never needed the coordinator's deadlock breakers"

    def test_session_commits_do_not_double_count(self):
        spec = make_spec("n2pl", seed=909, assignment=COLOCATED_HOT)
        result = ShardedEngine(spec, ShardMap(shards=2, assignment=COLOCATED_HOT)).run()
        merged = result.committed_transaction_ids
        assert len(merged) == len(set(merged))
        assert result.metrics.committed == len(merged)


class TestSweepIntegration:
    def test_run_scenario_routes_to_sharded_engine(self):
        spec = make_spec("n2pl", seed=111, shards=2, assignment=COLOCATED_HOT)
        row = run_scenario(spec).row
        assert row["shards"] == 2
        assert row["committed"] + row["gave_up"] == 40
        assert row["serialisable"] is True
        assert row["remote_invocations"] > 0
        assert row["cross_commits"] == row["cross_commits"]  # column present

    def test_sharded_row_matches_plain_columns(self):
        plain_row = run_scenario(make_spec("n2pl", seed=111)).row
        sharded_row = run_scenario(
            make_spec("n2pl", seed=111, shards=2, assignment=COLOCATED_HOT)
        ).row
        missing = set(plain_row) - set(sharded_row)
        assert not missing, f"sharded rows lost columns: {sorted(missing)}"

    def test_spec_rejects_stream_certification_with_shards(self):
        from repro.core.errors import SweepSpecError

        with pytest.raises(SweepSpecError):
            make_spec("n2pl", seed=1, shards=2).__class__(
                workload="hotspot",
                scheduler="n2pl",
                workload_params={"transactions": 4, "seed": 1},
                shards=2,
                certify="stream",
            )

    def test_spec_rejects_unknown_mode_and_bad_assignment(self):
        from repro.core.errors import SweepSpecError

        with pytest.raises(SweepSpecError):
            make_spec("n2pl", seed=1, shard_mode="threads")
        with pytest.raises(SweepSpecError):
            make_spec("n2pl", seed=1, shards=2, assignment={"hot-0": 5})

    def test_sharded_engine_rejects_stream_certify(self):
        from repro.core.errors import SimulationError

        spec = make_spec("n2pl", seed=1)
        spec.certify = "stream"
        with pytest.raises(SimulationError):
            ShardedEngine(spec, ShardMap(shards=2))


class TestPropertyGrid:
    """Hypothesis: the identities hold across scheduler × policy × seed."""

    @settings(max_examples=8, deadline=None)
    @given(
        st.sampled_from(SCHEDULERS),
        st.sampled_from(("immediate", "backoff")),
        st.integers(0, 10_000),
    )
    def test_single_shard_equals_plain(self, scheduler, policy, seed):
        spec = make_spec(scheduler, seed=seed, transactions=24, stream=True, gc_interval=16)
        spec.scheduler_kwargs = {"restart_policy": policy}
        sharded = ShardedEngine(spec, ShardMap(shards=1)).run()
        assert sharded_outcome(sharded) == plain_outcome(spec)

    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from(SCHEDULERS),
        st.sampled_from(("immediate", "backoff")),
        st.integers(0, 10_000),
        st.sampled_from((2, 4)),
    )
    def test_transports_agree(self, scheduler, policy, seed, shards):
        # Mid-stream GC (gc_interval=16) and cross-shard transactions both
        # active; the in-process oracle and the process transport must
        # stay bit-identical throughout.
        spec = make_spec(
            scheduler,
            seed=seed,
            transactions=24,
            stream=True,
            assignment=COLOCATED_HOT,
            gc_interval=16,
        )
        spec.scheduler_kwargs = {"restart_policy": policy}
        shard_map = ShardMap(shards=shards, assignment=COLOCATED_HOT)
        inproc = ShardedEngine(spec, shard_map).run()
        multi = ShardedEngine(
            spec, shard_map, mode="multiprocess", mp_context="fork"
        ).run()
        assert sharded_outcome(inproc) == sharded_outcome(multi)
        assert inproc.coordinator == multi.coordinator
        assert inproc.serialisable is True and multi.serialisable is True
