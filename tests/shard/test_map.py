"""ShardMap: placement determinism, routing, validation, JSON round-trip."""

from __future__ import annotations

import zlib

import pytest

from repro.core.errors import ModelError
from repro.shard import ShardMap
from repro.simulation.transactions import TransactionSpec

NAMES = frozenset({"hot-0", "hot-1", "cold-000", "cold-001", "cold-002"})


class TestPlacement:
    def test_default_placement_is_crc32(self):
        shard_map = ShardMap(shards=4)
        for name in NAMES:
            assert shard_map.shard_of(name) == zlib.crc32(name.encode()) % 4

    def test_explicit_assignment_overrides_hash(self):
        shard_map = ShardMap(shards=4, assignment={"hot-0": 3})
        assert shard_map.shard_of("hot-0") == 3

    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(shards=1)
        assert all(shard_map.shard_of(name) == 0 for name in NAMES)

    def test_partition_covers_all_shards(self):
        shard_map = ShardMap(shards=3)
        groups = shard_map.partition(NAMES)
        assert set(groups) == {0, 1, 2}
        assert sorted(name for group in groups.values() for name in group) == sorted(NAMES)


class TestRouting:
    def test_spec_objects_walks_nested_arguments(self):
        shard_map = ShardMap(shards=2)
        spec = TransactionSpec("update", (["hot-0", "unknown"], {"key": "cold-001"}, 7))
        assert shard_map.spec_objects(spec, NAMES) == ["hot-0", "cold-001"]

    def test_home_is_first_routable_name(self):
        shard_map = ShardMap(shards=2, assignment={"hot-0": 1, "cold-000": 0})
        spec = TransactionSpec("update", (("hot-0", "cold-000"), 1))
        assert shard_map.home_of(spec, NAMES) == 1

    def test_no_names_routes_to_shard_zero_and_is_local(self):
        shard_map = ShardMap(shards=4)
        spec = TransactionSpec("noop", (42,))
        assert shard_map.home_of(spec, NAMES) == 0
        assert not shard_map.is_cross(spec, NAMES)

    def test_is_cross_iff_names_span_shards(self):
        shard_map = ShardMap(shards=2, assignment={"hot-0": 0, "hot-1": 1, "cold-000": 0})
        local = TransactionSpec("update", (("hot-0", "cold-000"), 1))
        cross = TransactionSpec("update", (("hot-0", "hot-1"), 1))
        assert not shard_map.is_cross(local, NAMES)
        assert shard_map.is_cross(cross, NAMES)


class TestValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ModelError):
            ShardMap(shards=0)

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(ModelError):
            ShardMap(shards=2, assignment={"hot-0": 2})

    def test_rejects_non_int_assignment(self):
        with pytest.raises(ModelError):
            ShardMap(shards=2, assignment={"hot-0": "1"})

    def test_rejects_unknown_json_fields(self):
        with pytest.raises(ModelError):
            ShardMap.from_json_dict({"shards": 2, "placement": "range"})


class TestJsonRoundTrip:
    def test_round_trip_preserves_routing(self):
        original = ShardMap(shards=3, assignment={"hot-0": 2, "cold-001": 0})
        rebuilt = ShardMap.from_json(original.to_json())
        assert rebuilt == original
        assert all(rebuilt.shard_of(name) == original.shard_of(name) for name in NAMES)

    def test_json_dict_is_canonical(self):
        shard_map = ShardMap(shards=2, assignment={"b": 1, "a": 0})
        data = shard_map.to_json_dict()
        assert list(data["assignment"]) == ["a", "b"]
