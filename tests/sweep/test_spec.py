"""Specification layer: validation, JSON round-trip, grid expansion."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SweepSpecError
from repro.scheduler import scheduler_names
from repro.simulation.workloads import workload_names
from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepSpec


def hotspot_spec(**overrides) -> ScenarioSpec:
    data = dict(
        workload="hotspot",
        scheduler="n2pl",
        seed=5,
        workload_params={"transactions": 4, "operations_per_transaction": 2, "seed": 5},
    )
    data.update(overrides)
    return ScenarioSpec(**data)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def test_unknown_workload_rejected():
    with pytest.raises(SweepSpecError, match="unknown workload"):
        hotspot_spec(workload="no-such-workload")


def test_unknown_scheduler_rejected():
    with pytest.raises(SweepSpecError, match="unknown scheduler"):
        hotspot_spec(scheduler="no-such-scheduler")


def test_unknown_workload_parameter_rejected():
    with pytest.raises(SweepSpecError, match="no parameters"):
        hotspot_spec(workload_params={"transactions": 4, "wrong_knob": 1})


def test_unknown_engine_parameter_rejected():
    with pytest.raises(SweepSpecError, match="unknown engine parameters"):
        hotspot_spec(engine_params={"not_an_engine_option": True})


def test_unknown_scheduler_kwargs_rejected_eagerly():
    # The factory signatures are explicit, so a typo'd keyword fails at
    # spec construction, not inside a worker process mid-sweep.
    with pytest.raises(SweepSpecError, match="rejects scheduler_kwargs"):
        hotspot_spec(scheduler_kwargs={"levle": "step"})
    with pytest.raises(SweepSpecError, match="rejects scheduler_kwargs"):
        hotspot_spec(scheduler="single-active", scheduler_kwargs={"level": "step"})
    # Valid keywords still pass.
    assert hotspot_spec(scheduler_kwargs={"level": "step"}).scheduler_kwargs == {"level": "step"}


def test_tags_shadowing_metric_columns_rejected():
    # row.update(tags) must never overwrite a *measured* column; the
    # corruption would be serial/parallel-identical and undetectable.
    with pytest.raises(SweepSpecError, match="overwrite measured metrics-row columns"):
        hotspot_spec(tags={"aborts": "low"})
    from repro.sweep import Axis, SweepSpec

    with pytest.raises(SweepSpecError, match="overwrite measured metrics-row columns"):
        SweepSpec(
            name="shadow",
            base=hotspot_spec(),
            axes=(Axis("makespan", (1, 2), target="workload_params.transactions"),),
        )
    # The scheduler axis legitimately labels rows with the scheduler name.
    hotspot_spec(tags={"scheduler": "n2pl"})


def test_seed_must_be_int():
    with pytest.raises(SweepSpecError, match="seed must be an int"):
        hotspot_spec(seed="7")
    with pytest.raises(SweepSpecError, match="seed must be an int"):
        hotspot_spec(seed=True)


def test_non_json_values_rejected():
    with pytest.raises(SweepSpecError, match="JSON-serialisable"):
        hotspot_spec(tags={"callback": print})


def test_nan_and_infinity_rejected():
    # Python's json would happily emit NaN/Infinity literals that strict
    # RFC 8259 parsers reject; the spec layer refuses them up front.
    with pytest.raises(SweepSpecError, match="JSON-serialisable"):
        hotspot_spec(workload_params={"transactions": 4, "hot_probability": float("nan")})
    with pytest.raises(SweepSpecError, match="JSON-serialisable"):
        hotspot_spec(tags={"bound": float("inf")})


def test_modular_strategy_requires_workload_support():
    # The hotspot workload has no modular_strategy_map(); mixed does.
    with pytest.raises(SweepSpecError, match="modular_strategy_map"):
        hotspot_spec(modular_strategy_from_workload=True)
    spec = ScenarioSpec(
        workload="mixed",
        scheduler="modular",
        workload_params={"transactions": 4, "seed": 1},
        modular_strategy_from_workload=True,
    )
    assert spec.modular_strategy_from_workload


def test_axis_rejects_bad_paths_and_shapes():
    with pytest.raises(SweepSpecError, match="does not start with a ScenarioSpec field"):
        Axis("bogus", (1, 2), target="not_a_field")
    with pytest.raises(SweepSpecError, match="must name exactly one key"):
        Axis("x", (1, 2), target="workload_params")
    with pytest.raises(SweepSpecError, match="must not nest"):
        Axis("x", (1, 2), target="scheduler.nested")
    with pytest.raises(SweepSpecError, match="at least one point"):
        Axis("empty", ())
    with pytest.raises(SweepSpecError, match="applies no overrides"):
        Axis("x", (AxisPoint("label", {}),))


def test_sweep_rejects_duplicate_axis_names():
    with pytest.raises(SweepSpecError, match="duplicate axis names"):
        SweepSpec(
            name="dup",
            base=hotspot_spec(),
            axes=(Axis("seed", (1, 2)), Axis("seed", (3, 4))),
        )


def test_sweep_rejects_grid_that_expands_invalid():
    # The base is valid, but one grid point writes an unknown workload name;
    # expansion at construction surfaces it immediately.
    with pytest.raises(SweepSpecError, match="unknown workload"):
        SweepSpec(
            name="bad-grid",
            base=hotspot_spec(),
            axes=(Axis("workload", ("hotspot", "no-such-workload")),),
        )


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------


def test_scenario_spec_json_roundtrip():
    spec = hotspot_spec(
        scheduler_kwargs={"level": "step"},
        engine_params={"scheduling": "round-robin", "max_restarts": 3},
        tags={"grid": "unit"},
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    # The JSON form is pure data.
    assert json.loads(spec.to_json())["workload"] == "hotspot"


def test_sweep_spec_json_roundtrip():
    sweep = SweepSpec(
        name="roundtrip",
        base=hotspot_spec(),
        axes=(
            Axis("hot_probability", (0.1, 0.9), target="workload_params.hot_probability"),
            Axis(
                "configuration",
                (
                    AxisPoint("locks", {"scheduler": "n2pl"}),
                    AxisPoint("stamps", {"scheduler": "nto"}),
                ),
            ),
        ),
    )
    rebuilt = SweepSpec.from_json(sweep.to_json())
    assert rebuilt == sweep
    assert rebuilt.scenarios() == sweep.scenarios()


def test_from_json_dict_rejects_unknown_fields():
    data = hotspot_spec().to_json_dict()
    data["surprise"] = 1
    with pytest.raises(SweepSpecError, match="unknown ScenarioSpec fields"):
        ScenarioSpec.from_json_dict(data)


@settings(max_examples=25, deadline=None)
@given(
    workload=st.sampled_from(workload_names()),
    scheduler=st.sampled_from(scheduler_names()),
    seed=st.integers(min_value=-(2**31), max_value=2**31),
    tags=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=8), st.booleans()),
        max_size=3,
    ),
)
def test_property_scenario_roundtrip(workload, scheduler, seed, tags):
    """Any valid spec survives to_json/from_json exactly (canonicalisation)."""
    spec = ScenarioSpec(workload=workload, scheduler=scheduler, seed=seed, tags=tags)
    assert ScenarioSpec.from_json(spec.to_json()) == spec


# ---------------------------------------------------------------------------
# expansion
# ---------------------------------------------------------------------------


def test_expansion_is_nested_loop_order_with_tags():
    sweep = SweepSpec(
        name="grid",
        base=hotspot_spec(),
        axes=(
            Axis("hot_probability", (0.1, 0.5), target="workload_params.hot_probability"),
            Axis("scheduler", ("n2pl", "nto")),
        ),
    )
    scenarios = sweep.scenarios()
    assert len(sweep) == 4 == len(scenarios)
    observed = [
        (s.workload_params["hot_probability"], s.scheduler, s.tags["hot_probability"], s.tags["scheduler"])
        for s in scenarios
    ]
    # First axis outermost, second axis innermost.
    assert observed == [
        (0.1, "n2pl", 0.1, "n2pl"),
        (0.1, "nto", 0.1, "nto"),
        (0.5, "n2pl", 0.5, "n2pl"),
        (0.5, "nto", 0.5, "nto"),
    ]
    # The base spec itself is never mutated by expansion.
    assert "hot_probability" not in sweep.base.workload_params
    assert sweep.base.tags == {}


def test_axispoint_expansion_applies_coupled_overrides():
    sweep = SweepSpec(
        name="coupled",
        base=hotspot_spec(),
        axes=(
            Axis(
                "configuration",
                (
                    AxisPoint("blocking", {"scheduler": "n2pl", "seed": 11}),
                    AxisPoint("restarting", {"scheduler": "nto", "seed": 22}),
                ),
            ),
        ),
    )
    first, second = sweep.scenarios()
    assert (first.scheduler, first.seed, first.tags["configuration"]) == ("n2pl", 11, "blocking")
    assert (second.scheduler, second.seed, second.tags["configuration"]) == ("nto", 22, "restarting")


def test_base_tags_survive_and_axes_append():
    sweep = SweepSpec(
        name="tagged",
        base=hotspot_spec(tags={"experiment": "unit"}),
        axes=(Axis("seed", (1, 2)),),
    )
    for scenario in sweep:
        assert scenario.tags["experiment"] == "unit"
        assert scenario.tags["seed"] == scenario.seed
