"""Determinism guard for the restart/contention policy axes.

A full engine run must be a pure function of ``(workload seed, engine
seed, scheduler configuration)`` — including the PR-4 delayed-restart
wake-ups, whose randomized backoff draws come from a policy RNG seeded
off the engine seed.  The hypothesis property below re-runs sampled
``scheduler × restart policy × gate mode × seed`` scenarios twice and
demands bit-identical results; the sweep test additionally fans the full
policy grid out over worker processes and demands rows identical to the
serial run.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SweepSpecError
from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepRunner, SweepSpec
from repro.sweep.runner import build_engine, summarise_run

FAST_CONTEXT = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"

#: Schedulers that run a CommitGate (so both axes apply) plus n2pl, which
#: only restarts on deadlocks but must honour the policy all the same.
SCHEDULERS = ("certifier", "nto", "modular", "n2pl")
POLICIES = ("immediate", "backoff", "ordered")
GATE_MODES = ("cascade", "aca")


def storm_spec(scheduler: str, policy: str, gate_mode: str, seed: int) -> ScenarioSpec:
    scheduler_kwargs = {"restart_policy": policy}
    if scheduler in ("certifier", "nto", "modular"):
        scheduler_kwargs["gate_mode"] = gate_mode
    return ScenarioSpec(
        workload="hotspot",
        scheduler=scheduler,
        seed=seed,
        workload_params={
            "transactions": 8,
            "hot_objects": 2,
            "cold_objects": 6,
            "operations_per_transaction": 3,
            "hot_probability": 0.8,
            "seed": seed,
        },
        scheduler_kwargs=scheduler_kwargs,
        engine_params={"max_restarts": 6},
    )


def run_once(spec: ScenarioSpec) -> tuple[dict, dict, tuple]:
    engine = build_engine(spec)
    result = engine.run()
    row = summarise_run(result, spec.scheduler)
    return row, result.metrics.as_dict(), result.committed_transaction_ids


@settings(max_examples=30, deadline=None)
@given(
    scheduler=st.sampled_from(SCHEDULERS),
    policy=st.sampled_from(POLICIES),
    gate_mode=st.sampled_from(GATE_MODES),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_runs_are_bit_identical_across_repeats(scheduler, policy, gate_mode, seed):
    spec = storm_spec(scheduler, policy, gate_mode, seed)
    first_row, first_metrics, first_committed = run_once(spec)
    second_row, second_metrics, second_committed = run_once(spec)
    assert first_row == second_row
    assert first_metrics == second_metrics
    assert first_committed == second_committed


def policy_grid() -> SweepSpec:
    """The full policy × gate grid over the contended certifier scenario."""
    return SweepSpec(
        name="restart_determinism",
        base=storm_spec("certifier", "immediate", "cascade", seed=31),
        axes=(
            Axis(
                "restart_policy",
                POLICIES,
                target="scheduler_kwargs.restart_policy",
            ),
            Axis("gate_mode", GATE_MODES, target="scheduler_kwargs.gate_mode"),
            Axis("seed", (31, 32)),
        ),
    )


def test_serial_and_parallel_sweeps_agree_on_delayed_restarts():
    sweep = policy_grid()
    serial = SweepRunner(sweep, workers=0).run_rows()
    parallel = SweepRunner(sweep, workers=2, mp_context=FAST_CONTEXT).run_rows()
    assert serial == parallel
    # The grid genuinely exercised the delayed-restart queue...
    assert any(row["delayed_restarts"] > 0 for row in serial)
    # ...and both axes appear as row columns with their point labels.
    assert {row["restart_policy"] for row in serial} == set(POLICIES)
    assert {row["gate_mode"] for row in serial} == set(GATE_MODES)


def test_policy_axis_values_validate_eagerly():
    """Bad policy names, parameters or gate modes fail at spec construction,
    never inside a worker process."""

    def spec_with(**scheduler_kwargs) -> ScenarioSpec:
        return ScenarioSpec(
            workload="hotspot",
            scheduler="certifier",
            workload_params={"transactions": 4},
            scheduler_kwargs=scheduler_kwargs,
        )

    with pytest.raises(SweepSpecError, match="invalid restart policy"):
        spec_with(restart_policy="polite")
    with pytest.raises(SweepSpecError, match="invalid restart policy"):
        spec_with(restart_policy={"name": "backoff", "bse": 4})  # typo'd kwarg
    with pytest.raises(SweepSpecError, match="invalid restart policy"):
        spec_with(restart_policy={"name": "backoff", "base": 0})  # invalid value
    with pytest.raises(SweepSpecError, match="invalid restart policy"):
        spec_with(restart_policy={"base": 4})  # missing name
    with pytest.raises(SweepSpecError, match="unknown gate mode"):
        spec_with(gate_mode="optimism")
    # The valid shapes still construct.
    spec_with(restart_policy={"name": "backoff", "base": 4}, gate_mode="aca")


def test_axis_points_can_couple_policy_parameters():
    """AxisPoint overrides reach policy *parameters*, not just names."""
    sweep = SweepSpec(
        name="coupled_policy_params",
        base=storm_spec("certifier", "immediate", "cascade", seed=7),
        axes=(
            Axis(
                "policy",
                (
                    AxisPoint(
                        "backoff-small",
                        {"scheduler_kwargs.restart_policy": {"name": "backoff", "base": 2, "cap": 1}},
                    ),
                    AxisPoint(
                        "backoff-large",
                        {"scheduler_kwargs.restart_policy": {"name": "backoff", "base": 256, "cap": 2}},
                    ),
                ),
            ),
        ),
    )
    rows = SweepRunner(sweep, workers=0).run_rows()
    small, large = rows
    assert small["policy"] == "backoff-small"
    assert large["policy"] == "backoff-large"
    if small["delayed_restarts"] and large["delayed_restarts"]:
        # A wider window must schedule at least as much total delay.
        assert large["restart_delay_ticks"] > small["restart_delay_ticks"]
