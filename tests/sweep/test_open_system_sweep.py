"""Streaming scenarios through the sweep layer: validation + determinism.

The acceptance bar for open-system sweeps is the same as for closed ones:
a scenario row is a pure function of its spec, so a parallel (spawned)
run returns rows bit-identical to a serial run — including the new
latency and live-state columns — and every streaming knob (inner
workload, arrival process, arrival parameters) is validated eagerly at
spec construction.
"""

import pytest

from repro.core.errors import SweepSpecError
from repro.sweep import Axis, AxisPoint, ScenarioSpec, SweepRunner, SweepSpec


def streaming_base(**overrides):
    params = {
        "workload": "hotspot-stream",
        "workload_params": {
            "inner_params": {
                "transactions": 40,
                "hot_probability": 0.1,
                "cold_objects": 32,
                "operations_per_transaction": 2,
                "use_service_layer": False,
                "seed": 9,
            },
            "arrival": "poisson",
            "arrival_params": {"rate": 0.05},
        },
        "scheduler": "n2pl",
        "scheduler_kwargs": {"restart_policy": "backoff"},
        "seed": 21,
        "engine_params": {"gc_interval": 8},
        "certify": True,
    }
    params.update(overrides)
    return ScenarioSpec(**params)


class TestEagerValidation:
    def test_valid_streaming_spec_round_trips(self):
        spec = streaming_base()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize(
        "bad_params, match",
        [
            ({"inner": "nope"}, "unknown inner workload"),
            ({"inner_params": {"bogus": 1}}, "no parameters"),
            ({"inner": "stream"}, "cannot wrap one another"),
            ({"arrival": "nope"}, "unknown arrival process"),
            ({"arrival_params": {"bogus": 1}}, "rejects parameters"),
            ({"arrival_params": {"rate": -1}}, "rate"),
        ],
    )
    def test_bad_streaming_params_fail_at_spec_time(self, bad_params, match):
        params = {
            "inner_params": {"transactions": 4},
            "arrival": "poisson",
            "arrival_params": {"rate": 0.05},
        }
        params.update(bad_params)
        with pytest.raises(SweepSpecError, match=match):
            streaming_base(workload_params=params)

    def test_generic_stream_workload_validates_inner(self):
        with pytest.raises(SweepSpecError, match="unknown inner workload"):
            ScenarioSpec(
                workload="stream",
                workload_params={"inner": "definitely-not"},
                scheduler="n2pl",
            )

    def test_arrival_axis_points_are_validated_at_expansion(self):
        with pytest.raises(SweepSpecError, match="unknown arrival process"):
            SweepSpec(
                name="bad",
                base=streaming_base(),
                axes=(
                    Axis(
                        "arrival",
                        (AxisPoint("typo", {"workload_params.arrival": "poison"}),),
                    ),
                ),
            )


class TestStreamingDeterminism:
    def make_sweep(self):
        return SweepSpec(
            name="stream-grid",
            base=streaming_base(),
            axes=(
                Axis("scheduler", ("n2pl", "nto-step", "certifier")),
                Axis(
                    "arrival_point",
                    (
                        AxisPoint(
                            "poisson@0.03",
                            {"workload_params.arrival_params": {"rate": 0.03}},
                        ),
                        AxisPoint(
                            "bursty@8",
                            {
                                "workload_params.arrival": "bursty",
                                "workload_params.arrival_params": {
                                    "burst": 8,
                                    "mean_gap": 300,
                                },
                            },
                        ),
                    ),
                ),
            ),
        )

    def test_serial_rows_are_reproducible(self):
        sweep = self.make_sweep()
        first = SweepRunner(sweep).run_rows()
        second = SweepRunner(sweep).run_rows()
        assert first == second
        for row in first:
            assert row["arrived"] == 40
            assert row["serialisable"] is True

    def test_serial_equals_parallel_for_streaming_scenarios(self):
        sweep = self.make_sweep()
        serial = SweepRunner(sweep).run_rows()
        parallel = SweepRunner(sweep, workers=2, mp_context="spawn").run_rows()
        assert serial == parallel

    def test_streaming_rows_carry_open_system_columns(self):
        rows = SweepRunner(self.make_sweep()).run_rows()
        for row in rows:
            for column in (
                "arrived",
                "in_flight_peak",
                "mean_latency",
                "latency_max",
                "live_state_peak",
                "live_state_ratio",
            ):
                assert column in row, f"missing {column}"
            assert row["mean_latency"] > 0


class TestStreamCertifySweep:
    """``certify="stream"`` through the sweep layer: online verdicts in rows."""

    def make_stream_certify_sweep(self):
        return SweepSpec(
            name="stream-certify",
            base=streaming_base(certify="stream"),
            axes=(Axis("scheduler", ("n2pl", "nto-step", "certifier")),),
        )

    @pytest.mark.parametrize("bad", ["streaming", "post-hoc", "", 2, None])
    def test_invalid_certify_values_rejected_eagerly(self, bad):
        with pytest.raises(SweepSpecError, match="certify"):
            streaming_base(certify=bad)

    def test_stream_certify_spec_round_trips(self):
        spec = streaming_base(certify="stream")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_stream_certify_serial_equals_spawn_parallel(self):
        # The certifier's verdict is part of the row, so the spawn-pool
        # fan-out must reproduce it (and every other column) bit-for-bit;
        # the streaming certifier being a pure observer, the decision
        # columns also equal a certify=False run of the same spec (only
        # the verdict itself and the live-state gauge — which counts the
        # certifier's retained window by design — may differ).
        sweep = self.make_stream_certify_sweep()
        serial = SweepRunner(sweep).run_rows()
        parallel = SweepRunner(sweep, workers=2, mp_context="spawn").run_rows()
        assert serial == parallel
        for row in serial:
            assert row["serialisable"] is True
        plain = SweepRunner(
            SweepSpec(
                name="stream-plain",
                base=streaming_base(certify=False),
                axes=(Axis("scheduler", ("n2pl", "nto-step", "certifier")),),
            )
        ).run_rows()
        certifier_columns = ("serialisable", "live_state_peak", "live_state_ratio")
        for certified, uncertified in zip(serial, plain):
            observed = {
                column: value
                for column, value in certified.items()
                if column not in certifier_columns
            }
            expected = {
                column: value
                for column, value in uncertified.items()
                if column not in certifier_columns
            }
            assert observed == expected
