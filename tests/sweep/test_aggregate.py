"""Aggregation layer: grouping math, JSON and markdown report emission."""

from __future__ import annotations

import json

import pytest

from repro.analysis import format_markdown_table
from repro.sweep import (
    ScenarioResult,
    ScenarioSpec,
    group_rows,
    render_markdown_report,
    rows_of,
    sweep_report,
    write_json_report,
    write_markdown_report,
)

ROWS = [
    {"scheduler": "n2pl", "hot": 0.1, "committed": 10, "aborts": 2, "serialisable": True},
    {"scheduler": "n2pl", "hot": 0.9, "committed": 6, "aborts": 8, "serialisable": True},
    {"scheduler": "nto", "hot": 0.1, "committed": 9, "aborts": 4, "serialisable": True},
    {"scheduler": "nto", "hot": 0.9, "committed": 5, "aborts": 12, "serialisable": True},
]


def test_group_rows_aggregates_per_key():
    grouped = group_rows(ROWS, ("scheduler",), ("committed", "aborts"))
    assert [row["scheduler"] for row in grouped] == ["n2pl", "nto"]  # first-appearance order
    n2pl = grouped[0]
    assert n2pl["scenarios"] == 2
    assert n2pl["committed_mean"] == pytest.approx(8.0)
    assert n2pl["committed_min"] == 6
    assert n2pl["committed_max"] == 10
    assert n2pl["aborts_mean"] == pytest.approx(5.0)


def test_group_rows_skips_non_numeric_and_missing_values():
    rows = ROWS + [{"scheduler": "n2pl", "committed": "broken"}]
    grouped = group_rows(rows, ("scheduler",), ("committed", "serialisable", "absent"))
    n2pl = grouped[0]
    assert n2pl["scenarios"] == 3
    # The non-numeric cell is ignored, not coerced.
    assert n2pl["committed_mean"] == pytest.approx(8.0)
    # Booleans are not treated as numbers; all-missing metrics give None.
    assert n2pl["serialisable_mean"] is None
    assert n2pl["absent_mean"] is None


def test_group_rows_rejects_unknown_aggregation():
    with pytest.raises(ValueError, match="unknown aggregations"):
        group_rows(ROWS, ("scheduler",), ("committed",), aggregations=("median",))


def test_rows_of_accepts_results_and_mappings():
    spec = ScenarioSpec(workload="hotspot", scheduler="n2pl")
    result = ScenarioResult(index=0, spec=spec, row=ROWS[0], elapsed_seconds=0.1, worker_pid=1)
    rows = rows_of([result, ROWS[1]])
    assert rows == [ROWS[0], ROWS[1]]
    # Copies, not aliases.
    rows[0]["committed"] = -1
    assert ROWS[0]["committed"] == 10


def test_sweep_report_structure_and_extra():
    report = sweep_report(
        "unit",
        ROWS,
        group_by=("scheduler",),
        metrics=("committed",),
        extra={"serial_seconds": 1.5},
    )
    assert report["sweep"] == "unit"
    assert report["scenarios"] == 4
    assert report["rows"] == ROWS
    assert report["serial_seconds"] == 1.5
    assert report["grouped"]["group_by"] == ["scheduler"]
    assert len(report["grouped"]["rows"]) == 2


def test_json_and_markdown_reports_roundtrip(tmp_path):
    report = sweep_report("unit", ROWS, group_by=("scheduler",), metrics=("committed",))
    json_path = write_json_report(report, tmp_path / "report.json")
    assert json.loads(json_path.read_text())["sweep"] == "unit"

    markdown_path = write_markdown_report(report, tmp_path / "report.md")
    text = markdown_path.read_text()
    assert "## Sweep `unit` — 4 scenarios" in text
    assert "### Grouped by scheduler" in text
    assert "| scheduler |" in text


def test_render_markdown_report_without_grouping():
    report = sweep_report("plain", ROWS)
    text = render_markdown_report(report, columns=("scheduler", "committed"))
    assert "Grouped" not in text
    assert text.count("| n2pl | 10 |") == 1


def test_format_markdown_table_cells():
    table = format_markdown_table(
        [{"a": 1.23456, "b": True}, {"a": 2, "b": False}], precision=2, title="T"
    )
    lines = table.splitlines()
    assert lines[0] == "**T**"
    assert "| a | b |" in lines
    assert "| 1.23 | yes |" in lines
    assert "| 2 | no |" in lines
    assert format_markdown_table([]) == "(no rows)"
