"""Runner layer: determinism (serial == parallel), ordering, row shape."""

from __future__ import annotations

import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine, make_workload
from repro.sweep import (
    Axis,
    ScenarioSpec,
    SweepRunner,
    SweepSpec,
    run_scenario,
    summarise_run,
)

# ``fork`` keeps the worker-pool tests fast where available; the dedicated
# spawn test below exercises the portable default start method.
FAST_CONTEXT = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def tiny_spec(**overrides) -> ScenarioSpec:
    data = dict(
        workload="hotspot",
        scheduler="n2pl",
        seed=9,
        workload_params={
            "transactions": 4,
            "hot_objects": 2,
            "cold_objects": 6,
            "operations_per_transaction": 2,
            "hot_probability": 0.5,
            "seed": 9,
        },
    )
    data.update(overrides)
    return ScenarioSpec(**data)


def tiny_sweep(schedulers=("n2pl", "nto"), seeds=(1, 2)) -> SweepSpec:
    return SweepSpec(
        name="unit",
        base=tiny_spec(),
        axes=(Axis("scheduler", tuple(schedulers)), Axis("seed", tuple(seeds))),
    )


# ---------------------------------------------------------------------------
# row shape and single-scenario behaviour
# ---------------------------------------------------------------------------


def test_run_scenario_matches_direct_engine_run():
    """The sweep path reports exactly what a hand-built engine run reports."""
    spec = tiny_spec(tags={"grid": "unit"})
    workload = make_workload(spec.workload, **spec.workload_params)
    base, transaction_specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(spec.scheduler), seed=spec.seed)
    engine.submit_all(transaction_specs)
    expected = summarise_run(engine.run(), spec.scheduler)
    expected.update(spec.tags)

    result = run_scenario(spec, index=3)
    assert result.row == expected
    assert list(result.row.keys()) == list(expected.keys())
    assert result.index == 3
    assert result.spec == spec
    assert result.worker_pid == os.getpid()
    assert result.elapsed_seconds >= 0
    # Timing and process facts never leak into the deterministic row.
    assert "elapsed_seconds" not in result.row
    assert "worker_pid" not in result.row


def test_engine_params_and_certify_flag_are_honoured():
    spec = tiny_spec(
        engine_params={"scheduling": "round-robin", "max_restarts": 1},
        certify=False,
    )
    row = run_scenario(spec).row
    assert "serialisable" not in row
    # Round-robin vs random interleaving under the same seed must differ in
    # general; at minimum the run completes and reports the scheduler name.
    assert row["scheduler"] == "n2pl"


def test_modular_strategy_from_workload_builds_in_worker():
    spec = ScenarioSpec(
        workload="mixed",
        scheduler="modular",
        seed=4,
        workload_params={"customers": 3, "transactions": 6, "seed": 4},
        modular_strategy_from_workload=True,
    )
    row = run_scenario(spec).row
    assert row["scheduler"] == "modular"
    assert row["serialisable"] is True


# ---------------------------------------------------------------------------
# sweep execution
# ---------------------------------------------------------------------------


def test_serial_runs_are_repeatable():
    sweep = tiny_sweep()
    assert SweepRunner(sweep).run_rows() == SweepRunner(sweep).run_rows()


def test_empty_scenario_list_is_fine():
    assert SweepRunner([]).run() == []
    assert SweepRunner([], workers=4).run_rows() == []


def test_negative_workers_rejected():
    with pytest.raises(ValueError, match="workers must be >= 0"):
        SweepRunner([], workers=-1)


def test_results_come_back_in_grid_order():
    sweep = tiny_sweep(schedulers=("n2pl", "nto", "single-active"), seeds=(1, 2))
    results = SweepRunner(sweep, workers=2, mp_context=FAST_CONTEXT).run()
    assert [r.index for r in results] == list(range(6))
    assert [r.spec.tags["scheduler"] for r in results] == [
        "n2pl", "n2pl", "nto", "nto", "single-active", "single-active",
    ]


def test_parallel_rows_identical_to_serial_fork():
    sweep = tiny_sweep()
    serial = SweepRunner(sweep, workers=0).run_rows()
    parallel = SweepRunner(sweep, workers=2, mp_context=FAST_CONTEXT).run_rows()
    assert parallel == serial


def test_parallel_rows_identical_to_serial_spawn():
    """The portable default start method: specs pickled, engines built in-worker."""
    sweep = SweepSpec(
        name="spawn-unit",
        base=tiny_spec(),
        axes=(Axis("scheduler", ("n2pl", "nto")), Axis("seed", (7, 8))),
    )
    serial = SweepRunner(sweep, workers=0).run_rows()
    parallel = SweepRunner(sweep, workers=4, mp_context="spawn").run_rows()
    assert parallel == serial


def test_spawn_from_non_importable_main_fails_fast(monkeypatch):
    """A `python -` heredoc parent must get a clear error, not an endless
    worker-respawn hang (spawn re-imports __main__ by path)."""
    import sys

    monkeypatch.setattr(sys.modules["__main__"], "__file__", "/tmp/<stdin>", raising=False)
    runner = SweepRunner(tiny_sweep(), workers=2, mp_context="spawn")
    with pytest.raises(RuntimeError, match="not an importable file"):
        runner.run()


def test_workers_use_distinct_processes():
    sweep = tiny_sweep(schedulers=("n2pl",), seeds=(1, 2, 3, 4))
    results = SweepRunner(sweep, workers=2, mp_context=FAST_CONTEXT).run()
    assert all(r.worker_pid != os.getpid() for r in results)


@settings(max_examples=6, deadline=None)
@given(
    hot_probability=st.sampled_from((0.0, 0.25, 0.75, 1.0)),
    schedulers=st.lists(
        st.sampled_from(("n2pl", "nto", "single-active", "n2pl-step")),
        min_size=1, max_size=2, unique=True,
    ),
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=2, unique=True),
    engine_seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_parallel_equals_serial(hot_probability, schedulers, seeds, engine_seed):
    """Serial and multiprocessing runs of one seeded SweepSpec agree exactly."""
    sweep = SweepSpec(
        name="property",
        base=tiny_spec(
            seed=engine_seed,
            workload_params={
                "transactions": 3,
                "hot_objects": 2,
                "cold_objects": 4,
                "operations_per_transaction": 2,
                "hot_probability": hot_probability,
                "seed": engine_seed,
            },
        ),
        axes=(
            Axis("scheduler", tuple(schedulers)),
            Axis("workload_seed", tuple(seeds), target="workload_params.seed"),
        ),
    )
    serial = SweepRunner(sweep, workers=0).run_rows()
    parallel = SweepRunner(sweep, workers=2, mp_context=FAST_CONTEXT).run_rows()
    assert parallel == serial
