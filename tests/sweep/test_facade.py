"""The top-level API facade: ``repro.run`` and the exported surface."""

from __future__ import annotations

import pytest

import repro
from repro.shard.engine import ShardedRunResult
from repro.simulation import RunResult
from repro.sweep import ScenarioSpec


class TestRunShapes:
    def test_workload_name(self):
        result = repro.run(
            "hotspot", workload_params={"transactions": 8, "seed": 3}, seed=3
        )
        assert isinstance(result, RunResult)
        assert result.metrics.committed + result.metrics.gave_up == 8

    def test_mapping(self):
        result = repro.run(
            {
                "workload": "banking",
                "scheduler": "certifier",
                "workload_params": {"transactions": 6, "seed": 1},
                "seed": 9,
            }
        )
        assert isinstance(result, RunResult)
        assert result.scheduler_description["name"] == "certifier"

    def test_mapping_with_overrides(self):
        result = repro.run(
            {"workload": "banking", "workload_params": {"transactions": 6}},
            scheduler="adaptive",
            seed=4,
        )
        assert result.scheduler_description["name"] == "adaptive"

    def test_spec_instance_with_overrides(self):
        spec = ScenarioSpec(
            workload="hotspot",
            scheduler="modular",
            workload_params={"transactions": 6, "seed": 2},
            seed=2,
        )
        result = repro.run(spec, seed=5)
        assert isinstance(result, RunResult)
        # Overrides build a new spec; the caller's is untouched.
        assert spec.seed == 2

    def test_default_scheduler_is_modular(self):
        result = repro.run(
            "hotspot", workload_params={"transactions": 4, "seed": 1}, seed=1
        )
        assert result.scheduler_description["name"] == "modular"

    def test_unsupported_scenario_type(self):
        with pytest.raises(TypeError, match="workload name, a mapping"):
            repro.run(42)

    def test_unknown_workload_propagates(self):
        with pytest.raises(Exception, match="unknown"):
            repro.run("not-a-workload")

    def test_sharded_specs_return_sharded_results(self):
        result = repro.run(
            "hotspot",
            scheduler="n2pl",
            shards=2,
            shard_assignment={"hot-0": 0, "hot-1": 0},
            workload_params={
                "transactions": 10,
                "hot_objects": 2,
                "cold_objects": 8,
                "use_service_layer": False,
                "seed": 5,
            },
            scheduler_kwargs={"restart_policy": "backoff"},
            seed=5,
        )
        assert isinstance(result, ShardedRunResult)
        assert len(result.shards) == 2


class TestExportedSurface:
    @pytest.mark.parametrize(
        "name",
        (
            "run",
            "ScenarioSpec",
            "SweepSpec",
            "ShardMap",
            "SimulationEngine",
            "RunResult",
            "RunMetrics",
            "ARRIVAL_REGISTRY",
            "FAULT_REGISTRY",
            "WORKLOAD_REGISTRY",
            "SCHEDULER_FACTORIES",
            "INTRA_STRATEGIES",
            "RESTART_POLICIES",
            "resolve_component",
            "component_names",
            "make_scheduler",
            "make_workload",
            "make_arrival_process",
            "make_fault_plan",
            "make_restart_policy",
            "scheduler_names",
            "workload_names",
        ),
    )
    def test_public_name_is_exported(self, name):
        assert name in repro.__all__
        assert getattr(repro, name) is not None

    def test_adaptive_is_a_registered_scheduler(self):
        assert "adaptive" in repro.SCHEDULER_FACTORIES
        assert "adaptive" in repro.scheduler_names()
