"""Unit tests for the single-active-object baseline and the optimistic certifier."""

from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.scheduler import OptimisticCertifier, SingleActiveObjectScheduler
from repro.scheduler.base import Decision

from tests.scheduler.conftest import child_of, info, request


def make_single_active(base):
    scheduler = SingleActiveObjectScheduler()
    scheduler.attach(base)
    return scheduler


def make_certifier(base, level="step"):
    scheduler = OptimisticCertifier(level=level)
    scheduler.attach(base)
    return scheduler


class TestSingleActiveObject:
    def test_writers_of_same_object_exclude_each_other(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        first, second = info("T1"), info("T2")
        assert scheduler.on_operation(request(first, "cell", WriteRegister(1))).granted
        response = scheduler.on_operation(request(second, "cell", WriteRegister(2)))
        assert response.blocked
        assert response.blockers == {"T1"}

    def test_readers_share_the_object(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        first, second = info("T1"), info("T2")
        assert scheduler.on_operation(request(first, "cell", ReadRegister())).granted
        assert scheduler.on_operation(request(second, "cell", ReadRegister())).granted

    def test_reader_blocks_writer_and_vice_versa(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        reader, writer = info("T1"), info("T2")
        assert scheduler.on_operation(request(reader, "cell", ReadRegister())).granted
        assert scheduler.on_operation(request(writer, "cell", WriteRegister(1))).blocked

    def test_even_commuting_operations_are_serialised(self, small_object_base):
        # The whole point of the baseline: it cannot see inside the object,
        # so operations that commute semantically still exclude each other.
        from repro.objectbase.adts.counter import AddToCounter

        scheduler = make_single_active(small_object_base)
        first, second = info("T1"), info("T2")
        assert scheduler.on_operation(request(first, "hits", AddToCounter(1))).granted
        assert scheduler.on_operation(request(second, "hits", AddToCounter(1))).blocked

    def test_nested_executions_of_same_transaction_share_the_lock(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        parent = info("T1")
        child = child_of(parent, "T1.1", "cell")
        assert scheduler.on_operation(request(parent, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(child, "cell", WriteRegister(2))).granted

    def test_commit_releases_object_locks(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        first, second = info("T1"), info("T2")
        assert scheduler.on_operation(request(first, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(second, "cell", WriteRegister(2))).blocked
        scheduler.on_transaction_commit(first)
        assert scheduler.on_operation(request(second, "cell", WriteRegister(2))).granted

    def test_lock_upgrade_from_shared_to_exclusive(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        transaction = info("T1")
        assert scheduler.on_operation(request(transaction, "cell", ReadRegister())).granted
        assert scheduler.on_operation(request(transaction, "cell", WriteRegister(1))).granted
        other = info("T2")
        assert scheduler.on_operation(request(other, "cell", ReadRegister())).blocked

    def test_deadlock_detection_at_object_granularity(self, small_object_base):
        scheduler = make_single_active(small_object_base)
        first, second = info("T1"), info("T2")
        assert scheduler.on_operation(request(first, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(second, "other-cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(first, "other-cell", WriteRegister(2))).blocked
        response = scheduler.on_operation(request(second, "cell", WriteRegister(2)))
        assert response.decision is Decision.ABORT
        assert scheduler.deadlocks_detected == 1


class TestOptimisticCertifier:
    def run_step(self, scheduler, issuer, object_name, operation, value):
        operation_request = request(issuer, object_name, operation, value)
        assert scheduler.on_operation(operation_request).granted
        scheduler.on_operation_executed(operation_request, value)

    def test_everything_granted_during_execution(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        first, second = info("T1"), info("T2")
        self.run_step(scheduler, first, "cell", WriteRegister(1), 1)
        self.run_step(scheduler, second, "cell", WriteRegister(2), 2)

    def test_compatible_transactions_both_commit(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        first, second = info("T1"), info("T2")
        self.run_step(scheduler, first, "cell", WriteRegister(1), 1)
        self.run_step(scheduler, second, "other-cell", WriteRegister(2), 2)
        assert scheduler.on_commit_request(first).granted
        scheduler.on_transaction_commit(first)
        assert scheduler.on_commit_request(second).granted

    def test_cyclic_conflicts_abort_at_validation(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        first, second = info("T1"), info("T2")
        # T1 and T2 conflict on both registers in opposite orders.
        self.run_step(scheduler, first, "cell", WriteRegister(1), 1)
        self.run_step(scheduler, second, "cell", WriteRegister(2), 2)
        self.run_step(scheduler, second, "other-cell", WriteRegister(2), 2)
        self.run_step(scheduler, first, "other-cell", WriteRegister(1), 1)
        assert scheduler.on_commit_request(first).granted
        scheduler.on_transaction_commit(first)
        response = scheduler.on_commit_request(second)
        assert response.decision is Decision.ABORT
        assert scheduler.validation_aborts == 1

    def test_aborted_transaction_steps_are_forgotten(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        first, second = info("T1"), info("T2")
        self.run_step(scheduler, first, "cell", WriteRegister(1), 1)
        self.run_step(scheduler, second, "cell", WriteRegister(2), 2)
        self.run_step(scheduler, second, "other-cell", WriteRegister(2), 2)
        self.run_step(scheduler, first, "other-cell", WriteRegister(1), 1)
        scheduler.on_transaction_abort(second, ("T2",))
        # With T2's steps discarded, T1 validates cleanly.
        assert scheduler.on_commit_request(first).granted

    def test_describe_reports_validation_aborts(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        description = scheduler.describe()
        assert description["name"] == "certifier"
        assert description["validation_aborts"] == 0

    def test_invalid_level_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            OptimisticCertifier(level="bogus")
