"""Unit tests for hierarchical timestamps and the waits-for graph."""

from repro.scheduler.deadlock import WaitsForGraph
from repro.scheduler.timestamps import HierarchicalTimestamp, TimestampAuthority


class TestHierarchicalTimestamp:
    def test_lexicographic_order(self):
        assert HierarchicalTimestamp((1,)) < HierarchicalTimestamp((2,))
        assert HierarchicalTimestamp((1, 5)) < HierarchicalTimestamp((2,))
        assert HierarchicalTimestamp((1,)) < HierarchicalTimestamp((1, 1))
        assert HierarchicalTimestamp((2, 1)) > HierarchicalTimestamp((1, 9))

    def test_child_extends_components(self):
        parent = HierarchicalTimestamp((3,))
        assert parent.child(2).components == (3, 2)

    def test_prefix_detection(self):
        parent = HierarchicalTimestamp((3,))
        child = parent.child(1)
        grandchild = child.child(4)
        assert parent.is_prefix_of(grandchild)
        assert child.is_prefix_of(grandchild)
        assert not grandchild.is_prefix_of(parent)
        assert parent.is_prefix_of(parent)

    def test_level_and_repr(self):
        timestamp = HierarchicalTimestamp((1, 2, 3))
        assert timestamp.level() == 3
        assert "1.2.3" in repr(timestamp)


class TestTimestampAuthority:
    def test_top_level_timestamps_increase(self):
        authority = TimestampAuthority()
        first = authority.assign_top_level("T1")
        second = authority.assign_top_level("T2")
        assert first < second

    def test_children_ordered_by_issue_order(self):
        authority = TimestampAuthority()
        authority.assign_top_level("T1")
        first_child = authority.assign_child("T1", "T1.1")
        second_child = authority.assign_child("T1", "T1.2")
        assert first_child < second_child
        assert authority.timestamp_of("T1").is_prefix_of(first_child)

    def test_grandchildren_nest_under_children(self):
        authority = TimestampAuthority()
        authority.assign_top_level("T1")
        authority.assign_child("T1", "T1.1")
        grandchild = authority.assign_child("T1.1", "T1.1.1")
        assert authority.timestamp_of("T1.1").is_prefix_of(grandchild)
        # A later top-level transaction is ordered after every descendant of
        # an earlier one.
        later = authority.assign_top_level("T2")
        assert grandchild < later

    def test_knows_and_forget(self):
        authority = TimestampAuthority()
        authority.assign_top_level("T1")
        authority.assign_child("T1", "T1.1")
        assert authority.knows("T1.1")
        authority.forget_subtree(["T1.1"])
        assert not authority.knows("T1.1")
        assert authority.knows("T1")


class TestWaitsForGraph:
    def test_no_cycle_in_a_chain(self):
        graph = WaitsForGraph()
        graph.set_waits("T1", {"T2"})
        graph.set_waits("T2", {"T3"})
        assert graph.find_cycle_from("T1") is None

    def test_detects_two_party_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits("T1", {"T2"})
        graph.set_waits("T2", {"T1"})
        cycle = graph.find_cycle_from("T1")
        assert cycle is not None
        assert set(cycle) == {"T1", "T2"}

    def test_detects_longer_cycle(self):
        graph = WaitsForGraph()
        graph.set_waits("T1", {"T2"})
        graph.set_waits("T2", {"T3"})
        graph.set_waits("T3", {"T1"})
        assert graph.find_cycle_from("T2") is not None

    def test_self_wait_counts_as_deadlock(self):
        graph = WaitsForGraph()
        graph.set_waits("T1", {"T1"})
        assert graph.has_self_wait("T1")
        assert graph.find_cycle_from("T1") == ["T1"]

    def test_clear_and_remove(self):
        graph = WaitsForGraph()
        graph.set_waits("T1", {"T2"})
        graph.set_waits("T2", {"T1"})
        graph.clear_waits("T1")
        assert graph.find_cycle_from("T2") is None
        graph.set_waits("T1", {"T2"})
        graph.remove_transaction("T2")
        assert graph.waits_of("T1") == set()
        assert graph.find_cycle_from("T1") is None

    def test_empty_holder_set_clears_entry(self):
        graph = WaitsForGraph()
        graph.set_waits("T1", {"T2"})
        graph.set_waits("T1", set())
        assert graph.edges() == {}
