"""Unit tests for nested timestamp ordering (Reed's algorithm)."""

import pytest

from repro.objectbase.adts.fifo_queue import Dequeue, Enqueue
from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.scheduler import NestedTimestampOrdering, STEP_LEVEL
from repro.scheduler.base import Decision

from tests.scheduler.conftest import child_of, info, request


def make_scheduler(base, level="operation"):
    scheduler = NestedTimestampOrdering(level=level)
    scheduler.attach(base)
    return scheduler


def granted_and_recorded(scheduler, operation_request, value=None):
    response = scheduler.on_operation(operation_request)
    assert response.granted
    scheduler.on_operation_executed(operation_request, value)
    return response


class TestTimestampRuleOne:
    def test_operations_in_timestamp_order_are_granted(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        granted_and_recorded(scheduler, request(first, "cell", WriteRegister(1)), 1)
        granted_and_recorded(scheduler, request(second, "cell", WriteRegister(2)), 2)

    def test_late_conflicting_operation_aborts(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        # The younger transaction writes first; the older one then arrives
        # "too late" and must abort.
        granted_and_recorded(scheduler, request(second, "cell", WriteRegister(2)), 2)
        response = scheduler.on_operation(request(first, "cell", WriteRegister(1)))
        assert response.decision is Decision.ABORT
        assert "timestamp" in response.reason
        assert scheduler.timestamp_aborts == 1

    def test_non_conflicting_late_operation_is_granted(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        granted_and_recorded(scheduler, request(second, "cell", ReadRegister()), 0)
        # Reads do not conflict with reads, so the older reader proceeds.
        assert scheduler.on_operation(request(first, "cell", ReadRegister())).granted

    def test_comparable_executions_never_abort_each_other(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        parent = info("T1")
        scheduler.on_transaction_begin(parent)
        child = child_of(parent, "T1.1", "cell")
        scheduler.on_invoke(parent, child)
        granted_and_recorded(scheduler, request(child, "cell", WriteRegister(1)), 1)
        # The parent's timestamp is a prefix of the child's; although the
        # child's record is "later", the parent must not abort (they are
        # comparable executions).
        assert scheduler.on_operation(request(parent, "cell", ReadRegister())).granted


class TestTimestampRuleTwo:
    def test_sequential_children_get_increasing_timestamps(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        parent = info("T1")
        scheduler.on_transaction_begin(parent)
        first_child = child_of(parent, "T1.1", "cell")
        second_child = child_of(parent, "T1.2", "cell")
        scheduler.on_invoke(parent, first_child)
        scheduler.on_invoke(parent, second_child)
        assert scheduler.authority.timestamp_of("T1.1") < scheduler.authority.timestamp_of("T1.2")

    def test_restarted_transaction_gets_fresh_later_timestamp(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first = info("T1")
        scheduler.on_transaction_begin(first)
        retry = info("T3")
        scheduler.on_transaction_begin(retry)
        assert scheduler.authority.timestamp_of("T1") < scheduler.authority.timestamp_of("T3")


class TestStepLevelVariant:
    def test_enqueue_then_unrelated_dequeue_is_granted(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level=STEP_LEVEL)
        younger, older = info("T2"), info("T1")
        scheduler.on_transaction_begin(older)
        scheduler.on_transaction_begin(younger)
        enqueue = request(younger, "queue", Enqueue("fresh"), provisional_value=None)
        granted_and_recorded(scheduler, enqueue, None)
        # The older consumer dequeues the seed item, which does not conflict
        # with the younger producer's enqueue at the step level, so no abort.
        dequeue = request(older, "queue", Dequeue(), provisional_value="seed")
        assert scheduler.on_operation(dequeue).granted

    def test_operation_level_aborts_the_same_pair(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level="operation")
        younger, older = info("T2"), info("T1")
        scheduler.on_transaction_begin(older)
        scheduler.on_transaction_begin(younger)
        granted_and_recorded(scheduler, request(younger, "queue", Enqueue("fresh")), None)
        response = scheduler.on_operation(
            request(older, "queue", Dequeue(), provisional_value="seed")
        )
        assert response.decision is Decision.ABORT


class TestLifecycle:
    def test_abort_forgets_child_timestamps_but_keeps_records(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        parent = info("T1")
        scheduler.on_transaction_begin(parent)
        child = child_of(parent, "T1.1", "cell")
        scheduler.on_invoke(parent, child)
        granted_and_recorded(scheduler, request(child, "cell", WriteRegister(1)), 1)
        scheduler.on_transaction_abort(parent, ("T1", "T1.1"))
        assert not scheduler.authority.knows("T1.1")
        assert scheduler.describe()["recorded_steps"] == 1

    def test_describe_and_invalid_level(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level=STEP_LEVEL)
        assert scheduler.describe()["name"] == "nto"
        assert scheduler.describe()["level"] == STEP_LEVEL
        with pytest.raises(ValueError):
            NestedTimestampOrdering(level="bogus")

    def test_never_blocks(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        granted_and_recorded(scheduler, request(first, "cell", WriteRegister(1)), 1)
        response = scheduler.on_operation(request(second, "cell", WriteRegister(2)))
        # NTO either grants or aborts; it never blocks (deadlock freedom).
        assert response.decision in (Decision.GRANT, Decision.ABORT)
        assert not response.blocked
