"""Unit tests for the modular (intra- + inter-object) scheduler."""

import pytest

from repro.objectbase.adts.counter import AddToCounter
from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.scheduler import ModularScheduler, make_scheduler
from repro.scheduler.base import Decision
from repro.scheduler.modular import (
    IntraObjectLocking,
    IntraObjectTimestampOrdering,
    disjoint_ancestors,
)

from tests.scheduler.conftest import child_of, info, request


def attach(base, **kwargs):
    scheduler = ModularScheduler(**kwargs)
    scheduler.attach(base)
    return scheduler


def run_step(scheduler, issuer, object_name, operation, value):
    operation_request = request(issuer, object_name, operation, value)
    response = scheduler.on_operation(operation_request)
    if response.granted:
        scheduler.on_operation_executed(operation_request, value)
    return response


class TestDisjointAncestors:
    def test_top_level_pair(self):
        first, second = info("T1"), info("T2")
        assert disjoint_ancestors(first, second) == ("T1", "T2")

    def test_children_of_different_transactions(self):
        first = child_of(info("T1"), "T1.1", "A")
        second = child_of(info("T2"), "T2.1", "B")
        assert disjoint_ancestors(first, second) == ("T1", "T2")

    def test_siblings_under_common_parent(self):
        parent = info("T1")
        first = child_of(parent, "T1.1", "A")
        second = child_of(parent, "T1.2", "B")
        assert disjoint_ancestors(first, second) == ("T1.1", "T1.2")

    def test_comparable_executions_return_none(self):
        parent = info("T1")
        child = child_of(parent, "T1.1", "A")
        grandchild = child_of(child, "T1.1.1", "B")
        assert disjoint_ancestors(parent, child) is None
        assert disjoint_ancestors(grandchild, parent) is None

    def test_nephew_versus_uncle(self):
        parent = info("T1")
        uncle = child_of(parent, "T1.1", "A")
        sibling = child_of(parent, "T1.2", "B")
        nephew = child_of(sibling, "T1.2.1", "C")
        assert disjoint_ancestors(nephew, uncle) == ("T1.2", "T1.1")


class TestIntraObjectSynchronisers:
    def test_locking_blocks_conflicting_transactions(self, small_object_base):
        registry = small_object_base.conflicts("step")
        synchroniser = IntraObjectLocking("cell", registry["cell"])
        first = request(info("T1"), "cell", WriteRegister(1), 1)
        second = request(info("T2"), "cell", WriteRegister(2), 2)
        assert synchroniser.on_operation(first).granted
        blocked = synchroniser.on_operation(second)
        assert blocked.blocked and blocked.blockers == {"T1"}
        synchroniser.on_transaction_finished("T1")
        assert synchroniser.on_operation(second).granted

    def test_locking_ignores_commuting_operations(self, small_object_base):
        registry = small_object_base.conflicts("step")
        synchroniser = IntraObjectLocking("hits", registry["hits"])
        assert synchroniser.on_operation(request(info("T1"), "hits", AddToCounter(1))).granted
        assert synchroniser.on_operation(request(info("T2"), "hits", AddToCounter(1))).granted

    def test_timestamp_ordering_aborts_latecomers(self, small_object_base):
        registry = small_object_base.conflicts("step")
        synchroniser = IntraObjectTimestampOrdering("cell", registry["cell"])
        # T1 arrives at the object first (smaller local timestamp) with a
        # read, T2 then writes; when T1 comes back with a conflicting write
        # it is "too late" with respect to T2's recorded write and aborts.
        first_read = request(info("T1"), "cell", ReadRegister(), 0)
        assert synchroniser.on_operation(first_read).granted
        synchroniser.on_operation_executed(first_read, 0)
        second_write = request(info("T2"), "cell", WriteRegister(2), 2)
        assert synchroniser.on_operation(second_write).granted
        synchroniser.on_operation_executed(second_write, 2)
        response = synchroniser.on_operation(request(info("T1"), "cell", WriteRegister(1), 1))
        assert response.aborted


class TestModularScheduler:
    def test_strategy_selection_per_object(self, small_object_base):
        scheduler = attach(
            small_object_base,
            default_strategy="locking",
            per_object_strategy={"hits": "timestamp"},
        )
        strategies = scheduler.describe()["strategies"]
        assert strategies["hits"] == "timestamp"
        assert strategies["cell"] == "locking"

    def test_object_definition_hint_is_used(self):
        from repro.objectbase import ObjectBase
        from repro.objectbase.adts import btree_definition

        base = ObjectBase()
        base.register(btree_definition("idx"))
        scheduler = attach(base)
        assert scheduler.describe()["strategies"]["idx"] == "btree-key-locking"

    def test_inter_object_coordinator_aborts_incompatible_orders(self, small_object_base):
        scheduler = attach(small_object_base, default_strategy="timestamp")
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        # Object "cell" serialises T1 before T2; object "other-cell" would
        # serialise T2 before T1 -> the coordinator must abort someone.
        assert run_step(scheduler, first, "cell", WriteRegister(1), 1).granted
        assert run_step(scheduler, second, "cell", WriteRegister(2), 2).granted
        assert run_step(scheduler, second, "other-cell", WriteRegister(2), 2).granted
        response = run_step(scheduler, first, "other-cell", WriteRegister(1), 1)
        assert response.decision is Decision.ABORT
        assert "inter-object" in response.reason

    def test_intra_only_admits_incompatible_orders(self, small_object_base):
        scheduler = attach(
            small_object_base, default_strategy="timestamp", inter_object_checks=False
        )
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert run_step(scheduler, first, "cell", WriteRegister(1), 1).granted
        assert run_step(scheduler, second, "cell", WriteRegister(2), 2).granted
        assert run_step(scheduler, second, "other-cell", WriteRegister(2), 2).granted
        # Without inter-object checks the incompatible order goes unnoticed
        # (each object on its own is still serialisable).
        assert run_step(scheduler, first, "other-cell", WriteRegister(1), 1).granted

    def test_blocking_intra_strategy_detects_cross_object_deadlock(self, small_object_base):
        scheduler = attach(small_object_base, default_strategy="locking")
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert run_step(scheduler, first, "cell", WriteRegister(1), 1).granted
        assert run_step(scheduler, second, "other-cell", WriteRegister(2), 2).granted
        assert run_step(scheduler, first, "other-cell", WriteRegister(3), 3).blocked
        response = run_step(scheduler, second, "cell", WriteRegister(4), 4)
        assert response.decision is Decision.ABORT
        assert scheduler.deadlocks_detected == 1

    def test_abort_removes_coordinator_state(self, small_object_base):
        scheduler = attach(small_object_base, default_strategy="timestamp")
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert run_step(scheduler, first, "cell", WriteRegister(1), 1).granted
        assert run_step(scheduler, second, "cell", WriteRegister(2), 2).granted
        scheduler.on_transaction_abort(first, ("T1",))
        # T1's recorded step is gone, so a fresh transaction doing the
        # reverse order is no longer constrained by it.
        third = info("T3")
        scheduler.on_transaction_begin(third)
        assert run_step(scheduler, third, "other-cell", WriteRegister(9), 9).granted
        assert run_step(scheduler, third, "cell", WriteRegister(9), 9).granted

    def test_commit_releases_intra_object_locks(self, small_object_base):
        scheduler = attach(small_object_base, default_strategy="locking")
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert run_step(scheduler, first, "cell", WriteRegister(1), 1).granted
        assert run_step(scheduler, second, "cell", WriteRegister(2), 2).blocked
        scheduler.on_transaction_commit(first)
        assert run_step(scheduler, second, "cell", WriteRegister(2), 2).granted

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            ModularScheduler(level="bogus")


class TestFactory:
    def test_every_registered_name_instantiates(self, small_object_base):
        from repro.scheduler import scheduler_names

        for name in scheduler_names():
            scheduler = make_scheduler(name)
            scheduler.attach(small_object_base)
            assert scheduler.describe()["name"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_scheduler("definitely-not-a-scheduler")

    def test_level_argument_is_forwarded(self):
        scheduler = make_scheduler("n2pl", level="step")
        assert scheduler.level == "step"
        step_variant = make_scheduler("nto-step")
        assert step_variant.level == "step"

    def test_modular_intra_only_disables_checks(self):
        scheduler = make_scheduler("modular-intra-only")
        assert scheduler.inter_object_checks is False
