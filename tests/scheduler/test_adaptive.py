"""Adaptive per-object strategy management: config, swaps, determinism.

The claims under test mirror DESIGN.md's correctness argument: swaps only
happen at object-quiescent points, a forced mid-run swap cannot damage
the committed projection, adaptation is a pure function of the run (so
fixed-seed repeats are bit-identical), and contention actually moves hot
objects up the ladder.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import certify_run
from repro.core.errors import UnknownObjectError
from repro.scheduler import make_scheduler
from repro.scheduler.adaptive import AdaptiveModularScheduler, DEFAULT_LADDER
from repro.scheduler.modular import IntraObjectLocking
from repro.simulation import HotspotWorkload, SimulationEngine


def contended_workload(seed=11, transactions=40):
    return HotspotWorkload(
        transactions=transactions,
        hot_objects=2,
        cold_objects=8,
        operations_per_transaction=4,
        hot_probability=0.9,
        use_service_layer=False,
        seed=seed,
    )


def adaptive_scheduler(**kwargs):
    kwargs.setdefault("window", 16)
    kwargs.setdefault("promote_threshold", 3)
    kwargs.setdefault("restart_policy", "backoff")
    return AdaptiveModularScheduler(**kwargs)


def run_adaptive(workload, scheduler=None, seed=7, **engine_kwargs):
    base, specs = workload.build()
    scheduler = scheduler or adaptive_scheduler()
    engine = SimulationEngine(base, scheduler, seed=seed, **engine_kwargs)
    engine.submit_all(specs)
    return engine.run(), scheduler


class TestConfiguration:
    def test_factory_registration(self):
        scheduler = make_scheduler("adaptive", window=32, promote_threshold=2)
        assert isinstance(scheduler, AdaptiveModularScheduler)
        assert scheduler.window == 32

    def test_empty_ladder(self):
        with pytest.raises(ValueError, match="at least one strategy"):
            AdaptiveModularScheduler(ladder=())

    def test_ladder_rejects_instances(self):
        locking = IntraObjectLocking.__new__(IntraObjectLocking)
        with pytest.raises(TypeError, match="names or mappings"):
            AdaptiveModularScheduler(ladder=(locking,))

    def test_ladder_rejects_unknown_strategies(self):
        with pytest.raises((KeyError, ValueError)):
            AdaptiveModularScheduler(ladder=("certifier", "nope"))

    def test_ladder_entries_accept_mappings(self):
        scheduler = AdaptiveModularScheduler(
            ladder=("certifier", {"name": "locking"})
        )
        assert scheduler.describe()["ladder"] == ["certifier", "locking"]

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"window": 0}, "window must be >= 1"),
            ({"promote_threshold": 0}, "promote threshold must be >= 1"),
            ({"demote_threshold": -1}, "demote threshold"),
            ({"promote_threshold": 2, "demote_threshold": 2}, "demote threshold"),
            ({"hysteresis": 0}, "hysteresis must be >= 1"),
        ],
    )
    def test_bad_knobs(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            AdaptiveModularScheduler(**kwargs)

    def test_attach_starts_everyone_on_rung_zero(self):
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler()
        scheduler.attach(base)
        assert set(scheduler._rungs) == set(scheduler._synchronisers)
        assert set(scheduler._rungs.values()) == {0}

    def test_pinned_objects_never_adapt(self):
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler(
            per_object_strategy={"hot-0": "locking"}
        )
        scheduler.attach(base)
        assert "hot-0" not in scheduler._rungs
        assert isinstance(scheduler.synchroniser_for("hot-0"), IntraObjectLocking)


class TestUnknownObjectAccess:
    def test_modular_synchroniser_for_raises(self):
        base, _ = contended_workload().build()
        scheduler = make_scheduler("modular")
        scheduler.attach(base)
        with pytest.raises(UnknownObjectError, match="nope"):
            scheduler.synchroniser_for("nope")

    def test_adaptive_synchroniser_for_raises(self):
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler()
        scheduler.attach(base)
        with pytest.raises(UnknownObjectError):
            scheduler.synchroniser_for("missing-object")


class TestAdaptation:
    def test_contention_promotes_hot_objects(self):
        result, scheduler = run_adaptive(contended_workload())
        description = scheduler.describe()
        assert description["windows_evaluated"] > 0
        assert description["strategy_swaps"] > 0
        # Hot objects must have left the optimistic rung at least once;
        # after the run they sit wherever the decay left them, so assert
        # on the swap counter rather than the final rung.
        assert result.metrics.committed + result.metrics.gave_up == 40

    def test_adaptive_runs_stay_serialisable_and_legal(self):
        result, _ = run_adaptive(contended_workload(seed=23))
        report = certify_run(result, check_legality=True)
        assert report.serialisable
        assert report.legal

    def test_swaps_only_at_quiescent_points(self):
        # The quiescence rule is structural: _try_swap refuses while any
        # live transaction has touched the object.
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler()
        scheduler.attach(base)
        scheduler._live_on["hot-0"].add("T1")
        scheduler._desired["hot-0"] = 1
        assert scheduler._try_swap("hot-0") is False
        assert scheduler.deferred_swaps == 1
        assert scheduler._rungs["hot-0"] == 0
        scheduler._live_on["hot-0"].clear()
        assert scheduler._try_swap("hot-0") is True
        assert scheduler._rungs["hot-0"] == 1


class TestForceSwap:
    def test_unknown_object(self):
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler()
        scheduler.attach(base)
        with pytest.raises(KeyError, match="not under adaptive management"):
            scheduler.force_swap("nope", "locking")

    def test_strategy_off_the_ladder(self):
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler()
        scheduler.attach(base)
        with pytest.raises(ValueError, match="not on the ladder"):
            scheduler.force_swap("hot-0", "single-active")

    def test_quiescent_force_swap_executes_immediately(self):
        base, _ = contended_workload().build()
        scheduler = adaptive_scheduler()
        scheduler.attach(base)
        assert scheduler.force_swap("hot-0", "locking") is True
        assert scheduler._rungs["hot-0"] == DEFAULT_LADDER.index("locking")

    def test_forced_mid_run_swaps_preserve_legality(self):
        # Force the hot objects up and back down while transactions are
        # in flight; the quiescence rule defers what it must, and the
        # committed projection has to stay serialisable AND legal.
        class ForcingScheduler(AdaptiveModularScheduler):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self._force_ops = 0

            def on_operation(self, request):
                self._force_ops += 1
                if self._force_ops == 25:
                    for name in ("hot-0", "hot-1"):
                        self.force_swap(name, "locking")
                elif self._force_ops == 120:
                    for name in ("hot-0", "hot-1"):
                        self.force_swap(name, "certifier")
                return super().on_operation(request)

        scheduler = ForcingScheduler(
            window=10_000, promote_threshold=10_000,  # natural adaptation off
            restart_policy="backoff",
        )
        result, scheduler = run_adaptive(
            contended_workload(seed=31), scheduler=scheduler, check_undo=True
        )
        assert scheduler.strategy_swaps + scheduler.deferred_swaps > 0
        report = certify_run(result, check_legality=True)
        assert report.serialisable
        assert report.legal
        assert result.metrics.committed + result.metrics.gave_up == 40


def outcome(workload_seed, engine_seed):
    result, scheduler = run_adaptive(
        contended_workload(seed=workload_seed), seed=engine_seed
    )
    return (
        result.metrics.as_dict(),
        tuple(result.committed_transaction_ids),
        {name: dict(state) for name, state in result.final_states().items()},
        scheduler.describe(),
    )


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_fixed_seed_repeats_are_bit_identical(self, workload_seed, engine_seed):
        assert outcome(workload_seed, engine_seed) == outcome(
            workload_seed, engine_seed
        )
