"""Direct unit tests for :class:`repro.scheduler.recovery.CommitGate`.

The gate was previously only covered end-to-end (through NTO / certifier
/ modular engine runs); these tests drive its internals in isolation:
the commit-wait cycle abort path, aborted-marker pruning once no live
dependent remains, step-level vs operation-level dependency induction,
and the PR-4 ``aca`` mode (execution-time read gating).
"""

from __future__ import annotations

import pytest

from repro.core.operations import LocalStep
from repro.objectbase import ObjectBase
from repro.objectbase.adts import fifo_queue_definition, register_definition
from repro.objectbase.adts.fifo_queue import Dequeue, Enqueue
from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.scheduler.recovery import ACA_MODE, CASCADE_MODE, CommitGate

from tests.scheduler.conftest import info


def register_gate(step_level: bool = False, mode: str = CASCADE_MODE) -> CommitGate:
    base = ObjectBase()
    base.register(register_definition("cell", 0))
    base.register(register_definition("other", 0))
    registry = base.conflicts("step" if step_level else "operation")
    return CommitGate(lambda name: registry[name], step_level=step_level, mode=mode)


def queue_gate(step_level: bool) -> CommitGate:
    base = ObjectBase()
    base.register(fifo_queue_definition("queue", ("seed",)))
    registry = base.conflicts("step" if step_level else "operation")
    return CommitGate(lambda name: registry[name], step_level=step_level, mode=CASCADE_MODE)


class TestCommitArbitration:
    def test_commit_waits_for_live_dependency_then_grants(self):
        gate = register_gate()
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(5), "T1")
        gate.record_step("cell", ReadRegister(), "T2")  # observed T1's write

        response = gate.check_commit("T2")
        assert response.blocked
        assert response.blockers == frozenset({"T1"})
        assert gate.commit_waits == 1

        gate.finish("T1", committed=True)
        assert gate.check_commit("T2").granted

    def test_commit_cascades_when_dependency_aborted(self):
        gate = register_gate()
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(5), "T1")
        gate.record_step("cell", ReadRegister(), "T2")

        gate.finish("T1", committed=False)
        response = gate.check_commit("T2")
        assert response.aborted
        assert "cascading abort" in response.reason
        assert gate.cascading_aborts == 1

    def test_read_only_steps_never_seed_dependencies(self):
        gate = register_gate()
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", ReadRegister(), "T1")
        gate.record_step("cell", ReadRegister(), "T2")
        # Two conflicting-by-spec reads: nothing dirty could have been
        # transferred, so T2 commits without waiting for T1.
        assert gate.check_commit("T2").granted

    def test_commit_wait_cycle_aborts_the_closing_requester(self):
        gate = register_gate()
        gate.begin("T1")
        gate.begin("T2")
        # T2 depends on T1 via "cell", T1 depends on T2 via "other".
        gate.record_step("cell", WriteRegister(1), "T1")
        gate.record_step("cell", ReadRegister(), "T2")
        gate.record_step("other", WriteRegister(2), "T2")
        gate.record_step("other", ReadRegister(), "T1")

        first = gate.check_commit("T1")
        assert first.blocked and first.blockers == frozenset({"T2"})

        second = gate.check_commit("T2")
        assert second.aborted
        assert "commit dependency cycle" in second.reason
        # The victim's wait edge was rolled back; T1 can now cascade or
        # resolve once T2's abort is reported.
        gate.finish("T2", committed=False)
        assert gate.check_commit("T1").aborted  # observed T2's undone write


class TestAbortedMarkerPruning:
    def test_marker_kept_while_a_live_dependent_references_it(self):
        gate = register_gate()
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        gate.record_step("cell", ReadRegister(), "T2")

        gate.finish("T1", committed=False)
        assert "T1" in gate._aborted  # T2 still references the marker

    def test_marker_pruned_once_no_live_dependent_remains(self):
        gate = register_gate()
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        gate.record_step("cell", ReadRegister(), "T2")

        gate.finish("T1", committed=False)
        gate.finish("T2", committed=False)  # the last dependent resolves
        assert gate._aborted == set()

    def test_marker_pruned_immediately_when_nothing_depends_on_it(self):
        gate = register_gate()
        gate.begin("T1")
        gate.record_step("cell", WriteRegister(1), "T1")
        gate.finish("T1", committed=False)
        assert gate._aborted == set()


class TestDependencyGranularity:
    """The queue's step spec ignores Enqueue→Dequeue pairs that moved
    different items; the operation spec has to assume they conflict."""

    @staticmethod
    def _drive(gate: CommitGate, step_level: bool):
        gate.begin("T1")
        gate.begin("T2")
        enqueue = Enqueue("new-item")
        dequeue = Dequeue()
        if step_level:
            first = LocalStep("e1", "queue", enqueue, None)
            # The dequeue returned the pre-seeded item, not T1's.
            second = LocalStep("e2", "queue", dequeue, "seed")
        else:
            first, second = enqueue, dequeue
        gate.record_step("queue", first, "T1")
        gate.record_step("queue", second, "T2")
        return gate.check_commit("T2")

    def test_operation_level_induces_the_dependency(self):
        response = self._drive(queue_gate(step_level=False), step_level=False)
        assert response.blocked and response.blockers == frozenset({"T1"})

    def test_step_level_sees_the_disjoint_items_and_grants(self):
        response = self._drive(queue_gate(step_level=True), step_level=True)
        assert response.granted


class TestAcaMode:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            register_gate(mode="nonsense")

    def test_cascade_mode_never_blocks_operations(self):
        gate = register_gate(mode=CASCADE_MODE)
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        response = gate.check_operation("cell", ReadRegister(), info("T2"))
        assert response.granted
        assert gate.blocked_reads == 0

    def test_blocks_read_of_uncommitted_write(self):
        gate = register_gate(mode=ACA_MODE)
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        response = gate.check_operation("cell", ReadRegister(), info("T2"))
        assert response.blocked
        assert response.blockers == frozenset({"T1"})
        assert gate.blocked_reads == 1

    def test_grants_once_the_writer_resolved(self):
        gate = register_gate(mode=ACA_MODE)
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        assert gate.check_operation("cell", ReadRegister(), info("T2")).blocked
        gate.finish("T1", committed=True)
        assert gate.check_operation("cell", ReadRegister(), info("T2")).granted

    def test_read_only_predecessors_do_not_block(self):
        gate = register_gate(mode=ACA_MODE)
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", ReadRegister(), "T1")
        assert gate.check_operation("cell", WriteRegister(2), info("T2")).granted

    def test_own_steps_do_not_block(self):
        gate = register_gate(mode=ACA_MODE)
        gate.begin("T1")
        gate.record_step("cell", WriteRegister(1), "T1")
        assert gate.check_operation("cell", ReadRegister(), info("T1", top_level="T1")).granted

    def test_dirty_read_wait_cycle_aborts_the_requester(self):
        gate = register_gate(mode=ACA_MODE)
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        gate.record_step("other", WriteRegister(2), "T2")
        # T2 waits on T1's uncommitted cell write...
        assert gate.check_operation("cell", ReadRegister(), info("e2", top_level="T2")).blocked
        # ...and T1 reading "other" would close the wait cycle.
        response = gate.check_operation("other", ReadRegister(), info("e1", top_level="T1"))
        assert response.aborted
        assert "dirty-read wait cycle" in response.reason

    def test_aca_commits_never_wait_nor_cascade(self):
        gate = register_gate(mode=ACA_MODE)
        gate.begin("T1")
        gate.begin("T2")
        gate.record_step("cell", WriteRegister(1), "T1")
        gate.finish("T1", committed=False)
        # T2 executes its read only now (the gate would have blocked it
        # while T1 was live), so its commit is clean.
        assert gate.check_operation("cell", ReadRegister(), info("T2")).granted
        gate.record_step("cell", ReadRegister(), "T2")
        assert gate.check_commit("T2").granted
        assert gate.cascading_aborts == 0
        assert gate.commit_waits == 0
