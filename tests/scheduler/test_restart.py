"""Restart policies: registry, policy behaviour, engine integration.

The policy classes themselves are deterministic state machines, tested
directly; the engine integration tests drive
:class:`~repro.simulation.engine.SimulationEngine` with schedulers
carrying a non-immediate policy and check the delayed-restart queue
end-to-end (delays scheduled, restarts released, fast-forward when
nothing else is runnable, trace events).
"""

from __future__ import annotations

import pytest

from repro.objectbase import MethodDefinition, ObjectBase
from repro.objectbase.adts import register_definition
from repro.scheduler import (
    ImmediateRestart,
    OrderedRestart,
    RandomizedBackoff,
    RestartPolicy,
    Scheduler,
    make_restart_policy,
    make_scheduler,
    restart_policy_names,
)
from repro.scheduler.base import ExecutionInfo, SchedulerResponse
from repro.simulation import SimulationEngine, TransactionSpec
from repro.simulation.events import GAVE_UP, RESTARTED, RESTART_SCHEDULED


class TestRegistry:
    def test_names(self):
        assert restart_policy_names() == ["backoff", "immediate", "ordered"]

    def test_make_by_name(self):
        assert isinstance(make_restart_policy("immediate"), ImmediateRestart)
        assert isinstance(make_restart_policy("backoff"), RandomizedBackoff)
        assert isinstance(make_restart_policy("ordered"), OrderedRestart)

    def test_make_by_mapping_with_kwargs(self):
        policy = make_restart_policy({"name": "backoff", "base": 4, "cap": 2})
        assert isinstance(policy, RandomizedBackoff)
        assert (policy.base, policy.cap) == (4, 2)

    def test_instance_passes_through(self):
        policy = OrderedRestart(stride=7)
        assert make_restart_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown restart policy"):
            make_restart_policy("polite")

    def test_mapping_without_name_raises(self):
        with pytest.raises(TypeError, match="'name' entry"):
            make_restart_policy({"base": 4})

    def test_unknown_kwargs_raise(self):
        with pytest.raises(TypeError):
            make_restart_policy({"name": "immediate", "base": 4})

    def test_unsupported_spec_type_raises(self):
        with pytest.raises(TypeError, match="restart policy must be"):
            make_restart_policy(42)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RandomizedBackoff(base=0)
        with pytest.raises(ValueError):
            RandomizedBackoff(cap=-1)
        with pytest.raises(ValueError):
            OrderedRestart(stride=0)

    def test_every_scheduler_factory_accepts_a_policy(self):
        for name in ("pass-through", "n2pl", "n2pl-step", "nto", "nto-step",
                     "single-active", "certifier", "modular", "modular-intra-only"):
            scheduler = make_scheduler(name, restart_policy="ordered")
            assert scheduler.restart_policy.name == "ordered"
            assert scheduler.describe()["restart_policy"] == "ordered"

    def test_factory_accepts_mapping_policy(self):
        scheduler = make_scheduler("certifier", restart_policy={"name": "backoff", "base": 4})
        assert scheduler.restart_policy.base == 4


class TestImmediate:
    def test_zero_delay_always(self):
        policy = ImmediateRestart()
        policy.bind(99)
        assert policy.delay(0, 1, "any") == 0
        assert policy.delay(5, 20, "any") == 0


class TestBackoff:
    def test_deterministic_given_bind_seed(self):
        first, second = RandomizedBackoff(), RandomizedBackoff()
        first.bind(42)
        second.bind(42)
        sequence = [(lineage, attempt) for lineage in range(3) for attempt in range(1, 6)]
        assert [first.delay(l, a, "r") for l, a in sequence] == [
            second.delay(l, a, "r") for l, a in sequence
        ]

    def test_different_seeds_diverge(self):
        first, second = RandomizedBackoff(), RandomizedBackoff()
        first.bind(1)
        second.bind(2)
        draws_first = [first.delay(0, 1, "r") for _ in range(32)]
        draws_second = [second.delay(0, 1, "r") for _ in range(32)]
        assert draws_first != draws_second

    def test_delay_within_the_exponential_window(self):
        policy = RandomizedBackoff(base=8, cap=3)
        policy.bind(7)
        for attempt in range(1, 10):
            window = 8 << min(attempt - 1, 3)
            for _ in range(50):
                delay = policy.delay(0, attempt, "r")
                assert 1 <= delay <= window

    def test_explicit_seed_overrides_bind(self):
        policy = RandomizedBackoff(seed=5)
        policy.bind(1)
        draws_one = [policy.delay(0, 1, "r") for _ in range(8)]
        policy.bind(2)  # different engine seed, same explicit policy seed
        draws_two = [policy.delay(0, 1, "r") for _ in range(8)]
        assert draws_one == draws_two


class TestOrdered:
    def test_oldest_unfinished_lineage_never_waits(self):
        policy = OrderedRestart(stride=10)
        policy.bind(0)
        for lineage in range(4):
            policy.on_submit(lineage)
        assert policy.delay(0, 3, "r") == 0

    def test_rank_scales_with_older_unfinished_lineages(self):
        policy = OrderedRestart(stride=10)
        policy.bind(0)
        for lineage in range(4):
            policy.on_submit(lineage)
        assert policy.delay(3, 1, "r") == 30
        policy.on_finished(0)
        policy.on_finished(2)
        assert policy.delay(3, 1, "r") == 10  # only lineage 1 is older now
        assert policy.delay(1, 1, "r") == 0  # ...and is itself the oldest

    def test_bind_resets_state(self):
        policy = OrderedRestart(stride=10)
        policy.on_submit(0)
        policy.on_submit(1)
        policy.bind(0)
        assert policy.delay(1, 1, "r") == 0  # no unfinished lineages recorded


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


class AbortFirstAttempts(Scheduler):
    """Vetoes the first ``attempts_to_kill`` commit requests per transaction label."""

    name = "abort-first-attempts"

    def __init__(self, attempts_to_kill: int = 1, restart_policy="immediate"):
        super().__init__(restart_policy=restart_policy)
        self.attempts_to_kill = attempts_to_kill
        self._kills: dict[str, int] = {}

    def on_commit_request(self, info: ExecutionInfo) -> SchedulerResponse:
        killed = self._kills.get(info.method_name, 0)
        if killed < self.attempts_to_kill:
            self._kills[info.method_name] = killed + 1
            return SchedulerResponse.abort("validation failed: synthetic veto")
        return SchedulerResponse.grant()


def single_register_base(transactions: int = 1) -> ObjectBase:
    base = ObjectBase()
    base.register(register_definition("cell", 0))

    def bump(ctx, delta):
        value = yield ctx.invoke("cell", "read")
        yield ctx.invoke("cell", "write", (value or 0) + delta)
        return value

    # One method per submission: the veto counter in AbortFirstAttempts is
    # keyed by method name, so every transaction's first attempts are
    # vetoed independently of the interleaving.
    for index in range(transactions):
        base.register_transaction(MethodDefinition(f"bump-{index}", bump))
    return base


def run_with_policy(policy, *, attempts_to_kill=1, transactions=1, max_restarts=25, seed=3):
    base = single_register_base(transactions)
    scheduler = AbortFirstAttempts(attempts_to_kill, restart_policy=policy)
    engine = SimulationEngine(base, scheduler, seed=seed, record_trace=True,
                              max_restarts=max_restarts)
    for index in range(transactions):
        engine.submit(TransactionSpec(f"bump-{index}", (1,)))
    return engine.run()


class TestEngineIntegration:
    def test_immediate_policy_schedules_no_delays(self):
        result = run_with_policy("immediate")
        assert result.metrics.committed == 1
        assert result.metrics.restarts == 1
        assert result.metrics.delayed_restarts == 0
        assert result.metrics.restart_delay_ticks == 0
        assert not result.trace.of_kind(RESTART_SCHEDULED)

    def test_backoff_policy_delays_and_still_commits(self):
        result = run_with_policy("backoff")
        assert result.metrics.committed == 1
        assert result.metrics.restarts == 1
        assert result.metrics.delayed_restarts == 1
        assert result.metrics.restart_delay_ticks >= 1
        scheduled = result.trace.of_kind(RESTART_SCHEDULED)
        restarted = result.trace.of_kind(RESTARTED)
        assert len(scheduled) == 1 and len(restarted) == 1
        # The restart fired no earlier than its scheduled due tick (the
        # lone transaction forces a fast-forward of the idle clock).
        assert restarted[0].tick >= scheduled[0].tick + result.metrics.restart_delay_ticks

    def test_fast_forward_advances_makespan_past_the_delay(self):
        result = run_with_policy({"name": "backoff", "base": 64, "cap": 0})
        # Nothing else is runnable while the only transaction waits, so the
        # makespan must absorb the scheduled delay.
        assert result.metrics.committed == 1
        assert result.metrics.total_ticks >= result.metrics.restart_delay_ticks

    def test_ordered_policy_lets_the_oldest_restart_first(self):
        result = run_with_policy("ordered", transactions=3, attempts_to_kill=2)
        assert result.metrics.committed == 3
        assert result.metrics.delayed_restarts >= 1
        assert result.metrics.gave_up == 0

    def test_gave_up_ends_the_lineage_despite_delays(self):
        result = run_with_policy("backoff", attempts_to_kill=100, max_restarts=2)
        assert result.metrics.committed == 0
        assert result.metrics.gave_up == 1
        assert result.metrics.restarts == 2
        assert result.trace.of_kind(GAVE_UP)

    def test_attempt_counter_survives_delayed_restarts(self):
        result = run_with_policy("backoff", attempts_to_kill=3)
        # 3 vetoed attempts + 1 committing attempt = 3 restarts performed.
        assert result.metrics.committed == 1
        assert result.metrics.restarts == 3
        assert result.metrics.aborted_attempts == 3

    def test_truncation_clamps_fast_forward_to_max_ticks(self):
        base = single_register_base()
        scheduler = AbortFirstAttempts(
            1, restart_policy={"name": "backoff", "base": 4096, "cap": 0}
        )
        engine = SimulationEngine(base, scheduler, seed=3, max_ticks=20)
        engine.submit(TransactionSpec("bump-0", (1,)))
        result = engine.run()
        # The lone delayed restart is due far beyond the tick budget: the
        # fast-forward must clamp to max_ticks, never report a makespan
        # beyond it.
        assert result.metrics.total_ticks <= 20
        assert result.metrics.committed == 0

    def test_runs_are_bit_identical_for_every_policy(self):
        for policy in ("immediate", "backoff", "ordered"):
            first = run_with_policy(policy, transactions=3, attempts_to_kill=2, seed=11)
            second = run_with_policy(policy, transactions=3, attempts_to_kill=2, seed=11)
            assert first.metrics.as_dict() == second.metrics.as_dict()
            assert first.committed_transaction_ids == second.committed_transaction_ids
            assert [
                (event.tick, event.kind, event.execution_id) for event in first.trace
            ] == [(event.tick, event.kind, event.execution_id) for event in second.trace]
