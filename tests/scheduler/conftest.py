"""Helpers for driving schedulers directly (without the simulation engine)."""

from __future__ import annotations

import pytest

from repro.core.operations import LocalOperation, LocalStep
from repro.objectbase import ObjectBase
from repro.objectbase.adts import (
    bank_account_definition,
    counter_definition,
    fifo_queue_definition,
    register_definition,
)
from repro.scheduler.base import ExecutionInfo, OperationRequest


def info(
    execution_id: str,
    object_name: str = "environment",
    parent_id: str | None = None,
    ancestors: tuple[str, ...] = (),
    top_level: str | None = None,
    method: str = "m",
) -> ExecutionInfo:
    """Build an :class:`ExecutionInfo` with sensible defaults for tests."""
    if top_level is None:
        top_level = ancestors[-1] if ancestors else execution_id
    return ExecutionInfo(
        execution_id=execution_id,
        object_name=object_name,
        method_name=method,
        parent_id=parent_id,
        ancestor_ids=ancestors,
        top_level_id=top_level,
    )


def child_of(parent: ExecutionInfo, execution_id: str, object_name: str, method: str = "m") -> ExecutionInfo:
    """An ExecutionInfo for a child of ``parent``."""
    return ExecutionInfo(
        execution_id=execution_id,
        object_name=object_name,
        method_name=method,
        parent_id=parent.execution_id,
        ancestor_ids=(parent.execution_id,) + parent.ancestor_ids,
        top_level_id=parent.top_level_id,
    )


def request(
    issuer: ExecutionInfo,
    object_name: str,
    operation: LocalOperation,
    provisional_value=None,
) -> OperationRequest:
    """Build an :class:`OperationRequest` with an explicit provisional value."""
    return OperationRequest(
        info=issuer,
        object_name=object_name,
        operation=operation,
        provisional_step=LocalStep(issuer.execution_id, object_name, operation, provisional_value),
    )


@pytest.fixture
def small_object_base() -> ObjectBase:
    """An object base with one of each of the commonly used ADTs."""
    base = ObjectBase()
    base.register(register_definition("cell", 0))
    base.register(register_definition("other-cell", 0))
    base.register(counter_definition("hits", 0))
    base.register(bank_account_definition("acct", 100))
    base.register(fifo_queue_definition("queue", ("seed",)))
    return base
