"""Unit tests for the lock manager (rules 2 and 5 of N2PL)."""

from repro.core import PerObjectConflicts, ReadWriteConflictSpec
from repro.core.operations import LocalStep, ReadVariable, WriteVariable
from repro.objectbase.adts.fifo_queue import Dequeue, Enqueue, FifoQueueStepConflicts
from repro.scheduler.locks import LockManager

from tests.scheduler.conftest import child_of, info


def read_write_manager(step_level=False):
    return LockManager(PerObjectConflicts(default=ReadWriteConflictSpec()), step_level=step_level)


class TestLockAcquisition:
    def test_compatible_locks_granted_to_different_transactions(self):
        manager = read_write_manager()
        first = manager.request("A", ReadVariable("x"), info("T1"))
        second = manager.request("A", ReadVariable("x"), info("T2"))
        assert first.granted and second.granted
        assert manager.lock_count() == 2

    def test_conflicting_lock_blocked_and_nothing_recorded(self):
        manager = read_write_manager()
        assert manager.request("A", WriteVariable("x", 1), info("T1")).granted
        outcome = manager.request("A", ReadVariable("x"), info("T2"))
        assert not outcome.granted
        assert outcome.blockers == {"T1"}
        assert len(manager.held_by("T2")) == 0

    def test_conflicting_lock_of_ancestor_does_not_block(self):
        manager = read_write_manager()
        parent = info("T1")
        child = child_of(parent, "T1.1", "A")
        assert manager.request("A", WriteVariable("x", 1), parent).granted
        # Rule 2: the only conflicting holder is an ancestor of the child.
        assert manager.request("A", WriteVariable("x", 2), child).granted

    def test_conflicting_lock_of_sibling_blocks(self):
        manager = read_write_manager()
        parent = info("T1")
        first_child = child_of(parent, "T1.1", "A")
        second_child = child_of(parent, "T1.2", "A")
        assert manager.request("A", WriteVariable("x", 1), first_child).granted
        outcome = manager.request("A", WriteVariable("x", 2), second_child)
        assert not outcome.granted
        assert outcome.blockers == {"T1.1"}

    def test_locks_on_different_objects_do_not_interact(self):
        manager = read_write_manager()
        assert manager.request("A", WriteVariable("x", 1), info("T1")).granted
        assert manager.request("B", WriteVariable("x", 1), info("T2")).granted

    def test_own_lock_is_never_a_blocker(self):
        manager = read_write_manager()
        requester = info("T1")
        assert manager.request("A", WriteVariable("x", 1), requester).granted
        assert manager.request("A", WriteVariable("x", 2), requester).granted


class TestStepLevelLocks:
    def queue_manager(self):
        registry = PerObjectConflicts({"queue": FifoQueueStepConflicts()})
        return LockManager(registry, step_level=True)

    def test_enqueue_and_nonmatching_dequeue_do_not_block(self):
        manager = self.queue_manager()
        enqueue_step = LocalStep("T1", "queue", Enqueue("new-item"), None)
        dequeue_step = LocalStep("T2", "queue", Dequeue(), "old-item")
        assert manager.request("queue", enqueue_step, info("T1")).granted
        assert manager.request("queue", dequeue_step, info("T2")).granted

    def test_enqueue_blocks_dequeue_of_same_item(self):
        manager = self.queue_manager()
        enqueue_step = LocalStep("T1", "queue", Enqueue("new-item"), None)
        dequeue_step = LocalStep("T2", "queue", Dequeue(), "new-item")
        assert manager.request("queue", enqueue_step, info("T1")).granted
        outcome = manager.request("queue", dequeue_step, info("T2"))
        assert not outcome.granted


class TestReleaseAndInheritance:
    def test_release_all_frees_blockers(self):
        manager = read_write_manager()
        assert manager.request("A", WriteVariable("x", 1), info("T1")).granted
        assert not manager.request("A", WriteVariable("x", 2), info("T2")).granted
        freed = manager.release_all("T1")
        assert freed == frozenset({"T1"})
        assert manager.lock_count() == 0
        assert manager.request("A", WriteVariable("x", 2), info("T2")).granted

    def test_release_all_without_locks_frees_nothing(self):
        manager = read_write_manager()
        # No wake-up key must be produced for an owner that held nothing:
        # waking waiters on a no-op release would reintroduce busy polling.
        assert manager.release_all("T1") == frozenset()
        assert manager.transfer("T1.1", "T1") == frozenset()

    def test_transfer_moves_ownership_to_parent(self):
        manager = read_write_manager()
        parent = info("T1")
        child = child_of(parent, "T1.1", "A")
        assert manager.request("A", WriteVariable("x", 1), child).granted
        freed = manager.transfer(child.execution_id, parent.execution_id)
        assert freed == frozenset({"T1.1"})
        assert {entry.owner_id for entry in manager.holders("A")} == {"T1"}
        # After inheritance the parent's other child can acquire the lock
        # because the only conflicting holder is now its ancestor.
        other_child = child_of(parent, "T1.2", "A")
        assert manager.request("A", WriteVariable("x", 2), other_child).granted

    def test_release_all_of_multiple_owners(self):
        manager = read_write_manager()
        assert manager.request("A", WriteVariable("x", 1), info("T1.1", top_level="T1")).granted
        assert manager.request("B", WriteVariable("x", 1), info("T1.2", top_level="T1")).granted
        assert manager.release_all_of(["T1.1", "T1.2"]) == frozenset({"T1.1", "T1.2"})
        assert manager.lock_count() == 0

    def test_owners_listing(self):
        manager = read_write_manager()
        manager.request("A", ReadVariable("x"), info("T1"))
        manager.request("A", ReadVariable("x"), info("T2"))
        assert manager.owners() == {"T1", "T2"}
