"""Unit tests for nested two-phase locking (Moss' algorithm)."""

from repro.core.operations import ReadVariable
from repro.objectbase.adts.bank_account import Deposit, Withdraw
from repro.objectbase.adts.fifo_queue import Dequeue, Enqueue
from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.scheduler import NestedTwoPhaseLocking, STEP_LEVEL
from repro.scheduler.base import Decision

from tests.scheduler.conftest import child_of, info, request


def make_scheduler(base, level="operation"):
    scheduler = NestedTwoPhaseLocking(level=level)
    scheduler.attach(base)
    return scheduler


class TestRuleTwo:
    def test_compatible_requests_granted(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert scheduler.on_operation(request(first, "cell", ReadRegister())).granted
        assert scheduler.on_operation(request(second, "cell", ReadRegister())).granted

    def test_conflicting_request_blocks(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert scheduler.on_operation(request(first, "cell", WriteRegister(1))).granted
        response = scheduler.on_operation(request(second, "cell", ReadRegister()))
        assert response.blocked
        assert "T1" in response.blockers
        assert scheduler.blocked_requests == 1

    def test_ancestor_holding_conflicting_lock_does_not_block(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        parent = info("T1")
        scheduler.on_transaction_begin(parent)
        child = child_of(parent, "T1.1", "cell")
        scheduler.on_invoke(parent, child)
        assert scheduler.on_operation(request(parent, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(child, "cell", WriteRegister(2))).granted


class TestLockInheritance:
    def test_sibling_blocked_until_child_completes(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        parent = info("T1")
        scheduler.on_transaction_begin(parent)
        first_child = child_of(parent, "T1.1", "cell")
        second_child = child_of(parent, "T1.2", "cell")
        scheduler.on_invoke(parent, first_child)
        scheduler.on_invoke(parent, second_child)
        assert scheduler.on_operation(request(first_child, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(second_child, "cell", WriteRegister(2))).blocked
        # Rule 5: when the first child completes its locks move to the parent,
        # which is an ancestor of the second child, so the retry succeeds.
        scheduler.on_execution_complete(first_child)
        assert scheduler.on_operation(request(second_child, "cell", WriteRegister(2))).granted

    def test_commit_releases_all_locks(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert scheduler.on_operation(request(first, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(second, "cell", WriteRegister(2))).blocked
        scheduler.on_transaction_commit(first)
        assert scheduler.on_operation(request(second, "cell", WriteRegister(2))).granted

    def test_abort_releases_subtree_locks(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        parent = info("T1")
        scheduler.on_transaction_begin(parent)
        child = child_of(parent, "T1.1", "cell")
        scheduler.on_invoke(parent, child)
        assert scheduler.on_operation(request(child, "cell", WriteRegister(1))).granted
        other = info("T2")
        scheduler.on_transaction_begin(other)
        assert scheduler.on_operation(request(other, "cell", WriteRegister(5))).blocked
        scheduler.on_transaction_abort(parent, ("T1", "T1.1"))
        assert scheduler.on_operation(request(other, "cell", WriteRegister(5))).granted


class TestDeadlockDetection:
    def test_two_transaction_deadlock_aborts_requester(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert scheduler.on_operation(request(first, "cell", WriteRegister(1))).granted
        assert scheduler.on_operation(request(second, "other-cell", WriteRegister(1))).granted
        # T1 now waits for T2, then T2 waits for T1 -> deadlock, requester aborts.
        assert scheduler.on_operation(request(first, "other-cell", WriteRegister(2))).blocked
        response = scheduler.on_operation(request(second, "cell", WriteRegister(2)))
        assert response.decision is Decision.ABORT
        assert "deadlock" in response.reason
        assert scheduler.deadlocks_detected == 1


class TestStepLevelLocking:
    def test_queue_enqueue_does_not_block_unrelated_dequeue(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level=STEP_LEVEL)
        producer, consumer = info("T1"), info("T2")
        scheduler.on_transaction_begin(producer)
        scheduler.on_transaction_begin(consumer)
        enqueue = request(producer, "queue", Enqueue("fresh"), provisional_value=None)
        dequeue = request(consumer, "queue", Dequeue(), provisional_value="seed")
        assert scheduler.on_operation(enqueue).granted
        assert scheduler.on_operation(dequeue).granted

    def test_operation_level_blocks_the_same_pair(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level="operation")
        producer, consumer = info("T1"), info("T2")
        scheduler.on_transaction_begin(producer)
        scheduler.on_transaction_begin(consumer)
        assert scheduler.on_operation(request(producer, "queue", Enqueue("fresh"))).granted
        assert scheduler.on_operation(
            request(consumer, "queue", Dequeue(), provisional_value="seed")
        ).blocked

    def test_bank_account_withdraw_then_deposit_coexist(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level=STEP_LEVEL)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        withdraw = request(first, "acct", Withdraw(10), provisional_value=True)
        deposit = request(second, "acct", Deposit(5), provisional_value=None)
        assert scheduler.on_operation(withdraw).granted
        assert scheduler.on_operation(deposit).granted


class TestDescribe:
    def test_describe_reports_configuration(self, small_object_base):
        scheduler = make_scheduler(small_object_base, level=STEP_LEVEL)
        description = scheduler.describe()
        assert description["name"] == "n2pl"
        assert description["level"] == STEP_LEVEL
        assert description["deadlocks_detected"] == 0

    def test_invalid_level_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            NestedTwoPhaseLocking(level="bogus")

    def test_environment_operations_use_conservative_spec(self, small_object_base):
        scheduler = make_scheduler(small_object_base)
        first, second = info("T1"), info("T2")
        scheduler.on_transaction_begin(first)
        scheduler.on_transaction_begin(second)
        assert scheduler.on_operation(request(first, "environment", ReadVariable("x"))).granted
        assert scheduler.on_operation(request(second, "environment", ReadVariable("x"))).blocked
