"""Unit tests for the incremental certifier validation path (PR 2).

The optimistic certifier now classifies every executed step exactly once
— against the steps already recorded on its object — and files the
resulting sibling-level candidate edges under both involved transactions.
Commit validation merely *selects* the filed edges whose other side has
resolved: it performs zero conflict-spec calls and never re-enumerates
committed-vs-committed step pairs.  These tests pin that contract down by
counting conflict-spec calls per lifecycle phase, and exercise the
touched-object abort cleanup, the dominated-record pruning, and the
``check=True`` oracle that revalidates every commit against the legacy
full re-enumeration.
"""

from __future__ import annotations

import pytest

from repro.objectbase.adts.register import ReadRegister, WriteRegister
from repro.scheduler import OptimisticCertifier, make_scheduler
from repro.scheduler.base import Decision
from repro.simulation import HotspotWorkload, SimulationEngine

from tests.scheduler.conftest import info, request


def make_certifier(base, **kwargs):
    scheduler = OptimisticCertifier(**kwargs)
    scheduler.attach(base)
    return scheduler


def run_step(scheduler, issuer, object_name, operation, value):
    operation_request = request(issuer, object_name, operation, value)
    assert scheduler.on_operation(operation_request).granted
    scheduler.on_operation_executed(operation_request, value)


class _ConflictCounter:
    """Wrap ``scheduler._conflicting`` and count calls per phase."""

    def __init__(self, scheduler):
        self.calls = 0
        self._original = scheduler._conflicting
        scheduler._conflicting = self._count

    def _count(self, object_name, earlier, later):
        self.calls += 1
        return self._original(object_name, earlier, later)

    def take(self) -> int:
        taken, self.calls = self.calls, 0
        return taken


class TestCommitValidationIsIncremental:
    def test_commit_makes_zero_conflict_spec_calls(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        counter = _ConflictCounter(scheduler)
        for index in range(1, 9):
            issuer = info(f"T{index}")
            scheduler.on_transaction_begin(issuer)
            run_step(scheduler, issuer, "cell", WriteRegister(index), index)
            run_step(scheduler, issuer, "other-cell", WriteRegister(index), index)
            executed_calls = counter.take()
            # Classification happens at execution time, once per earlier
            # record on the touched objects — never at commit.
            assert executed_calls >= 0
            assert scheduler.on_commit_request(issuer).granted
            assert counter.take() == 0, "commit validation must not call the conflict spec"
            scheduler.on_transaction_commit(issuer)
            assert counter.take() == 0

    def test_classification_cost_tracks_object_suffix_not_history(self, small_object_base):
        # With pruning, each committed (transaction, operation) leaves one
        # record per object, so the classification cost of a new step stays
        # bounded by the object's distinct committed footprint — but the
        # essential assertion is that validation cost at commit is zero and
        # execution-time classification touches only same-object records.
        scheduler = make_certifier(small_object_base)
        counter = _ConflictCounter(scheduler)
        for index in range(1, 6):
            issuer = info(f"T{index}")
            scheduler.on_transaction_begin(issuer)
            run_step(scheduler, issuer, "cell", WriteRegister(index), index)
            calls_on_cell = counter.take()
            # Exactly one classification per earlier record on "cell".
            assert calls_on_cell == len(scheduler._steps_by_object["cell"]) - 1
            run_step(scheduler, issuer, "other-cell", WriteRegister(index), index)
            counter.take()
            assert scheduler.on_commit_request(issuer).granted
            assert counter.take() == 0
            scheduler.on_transaction_commit(issuer)

    def test_cyclic_conflicts_still_abort_at_validation(self, small_object_base):
        scheduler = make_certifier(small_object_base, check=True)
        first, second = info("T1"), info("T2")
        run_step(scheduler, first, "cell", WriteRegister(1), 1)
        run_step(scheduler, second, "cell", WriteRegister(2), 2)
        run_step(scheduler, second, "other-cell", WriteRegister(2), 2)
        run_step(scheduler, first, "other-cell", WriteRegister(1), 1)
        assert scheduler.on_commit_request(first).granted
        scheduler.on_transaction_commit(first)
        response = scheduler.on_commit_request(second)
        assert response.decision is Decision.ABORT
        assert scheduler.validation_aborts == 1

    def test_failed_validation_rolls_the_committed_graph_back(self, small_object_base):
        scheduler = make_certifier(small_object_base, check=True)
        first, second, third = info("T1"), info("T2"), info("T3")
        run_step(scheduler, first, "cell", WriteRegister(1), 1)
        run_step(scheduler, second, "cell", WriteRegister(2), 2)
        run_step(scheduler, second, "other-cell", WriteRegister(2), 2)
        run_step(scheduler, first, "other-cell", WriteRegister(1), 1)
        assert scheduler.on_commit_request(first).granted
        scheduler.on_transaction_commit(first)
        snapshot_nodes = set(scheduler._committed_graph.nodes)
        snapshot_edges = set(scheduler._committed_graph.edges)
        assert scheduler.on_commit_request(second).decision is Decision.ABORT
        # The failed trial left no residue in the committed graph.
        assert set(scheduler._committed_graph.nodes) == snapshot_nodes
        assert set(scheduler._committed_graph.edges) == snapshot_edges
        scheduler.on_transaction_abort(second, ("T2",))
        # An unrelated transaction still validates cleanly afterwards.
        run_step(scheduler, third, "cell", WriteRegister(3), 3)
        assert scheduler.on_commit_request(third).granted


class TestAbortCleanupAndPruning:
    def test_abort_rebuilds_only_touched_objects(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        first, second = info("T1"), info("T2")
        run_step(scheduler, first, "cell", WriteRegister(1), 1)
        run_step(scheduler, second, "other-cell", WriteRegister(2), 2)
        untouched = scheduler._steps_by_object["other-cell"]
        untouched_before = list(untouched)
        scheduler.on_transaction_abort(first, ("T1",))
        assert scheduler._steps_by_object["cell"] == []
        # The untouched object's record list was not rebuilt (same items).
        assert scheduler._steps_by_object["other-cell"] == untouched_before
        assert "T1" not in scheduler._touched_objects

    def test_abort_unfiles_candidate_edges_on_both_sides(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        first, second = info("T1"), info("T2")
        run_step(scheduler, first, "cell", WriteRegister(1), 1)
        run_step(scheduler, second, "cell", WriteRegister(2), 2)
        assert scheduler._pending_edges["T1"] and scheduler._pending_edges["T2"]
        scheduler.on_transaction_abort(second, ("T2",))
        assert "T2" not in scheduler._pending_edges
        assert not scheduler._pending_edges["T1"]
        # T1 validates with no stale edges against the aborted peer.
        assert scheduler.on_commit_request(first).granted

    def test_committed_duplicate_records_are_pruned(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        issuer = info("T1")
        # The same execution re-reads the register: identical operation,
        # identical return value — the duplicate can never contribute a new
        # edge once T1 has committed.
        run_step(scheduler, issuer, "cell", ReadRegister(), 0)
        run_step(scheduler, issuer, "cell", ReadRegister(), 0)
        run_step(scheduler, issuer, "cell", WriteRegister(5), 5)
        assert len(scheduler._steps_by_object["cell"]) == 3
        assert scheduler.on_commit_request(issuer).granted
        scheduler.on_transaction_commit(issuer)
        records = scheduler._steps_by_object["cell"]
        assert len(records) == 2  # one read survives, the write survives
        assert [record.step.operation.name for record in records] == [
            "ReadRegister",
            "WriteRegister",
        ]

    def test_live_records_are_never_pruned(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        committed, live = info("T1"), info("T2")
        run_step(scheduler, committed, "cell", ReadRegister(), 0)
        run_step(scheduler, live, "cell", ReadRegister(), 0)
        run_step(scheduler, live, "cell", ReadRegister(), 0)
        assert scheduler.on_commit_request(committed).granted
        scheduler.on_transaction_commit(committed)
        live_records = [
            record
            for record in scheduler._steps_by_object["cell"]
            if record.transaction_id == "T2"
        ]
        assert len(live_records) == 2


class TestLegacyOracle:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1111])
    def test_engine_runs_validate_against_legacy(self, seed):
        # check=True revalidates every commit decision against the original
        # full re-enumeration and raises VerificationError on divergence.
        base, specs = HotspotWorkload(
            transactions=16,
            hot_objects=2,
            cold_objects=6,
            operations_per_transaction=3,
            hot_probability=0.5,
            seed=seed,
        ).build()
        scheduler = make_scheduler("certifier", check=True)
        engine = SimulationEngine(base, scheduler, seed=seed)
        engine.submit_all(specs)
        result = engine.run()
        from repro.analysis import certify_run

        report = certify_run(result, check_legality=False)
        assert report.serialisable

    def test_check_flag_reaches_factory(self):
        scheduler = make_scheduler("certifier", check=True)
        assert scheduler.check is True
        assert make_scheduler("certifier").check is False

    def test_describe_reports_incremental_counters(self, small_object_base):
        scheduler = make_certifier(small_object_base)
        description = scheduler.describe()
        assert description["classified_pairs"] == 0
        assert description["commit_conflict_calls"] == 0
        issuer = info("T1")
        run_step(scheduler, issuer, "cell", WriteRegister(1), 1)
        run_step(scheduler, issuer, "cell", WriteRegister(2), 2)
        assert scheduler.describe()["classified_pairs"] == 1
        assert scheduler.on_commit_request(issuer).granted
        # Without check mode the legacy path never runs at commit.
        assert scheduler.describe()["commit_conflict_calls"] == 0
