"""Uniform component resolution: the one spec shape behind every registry."""

from __future__ import annotations

import pytest

from repro.core.registry import component_names, resolve_component


class Widget:
    def __init__(self, size=1, colour="red"):
        self.size = size
        self.colour = colour


class Gadget:
    def __init__(self, prefix, size=1):
        self.prefix = prefix
        self.size = size


REGISTRY = {"widget": Widget, "gadget": Gadget}


class TestShapes:
    def test_name(self):
        built = resolve_component(REGISTRY, "widget")
        assert isinstance(built, Widget)
        assert built.size == 1

    def test_name_with_kwargs(self):
        built = resolve_component(REGISTRY, "widget", size=4)
        assert built.size == 4

    def test_mapping(self):
        built = resolve_component(REGISTRY, {"name": "widget", "colour": "blue"})
        assert built.colour == "blue"

    def test_kwargs_override_mapping_entries(self):
        built = resolve_component(
            REGISTRY, {"name": "widget", "size": 2}, size=9
        )
        assert built.size == 9

    def test_instance_passthrough(self):
        ready = Widget(size=7)
        assert (
            resolve_component(REGISTRY, ready, instance_of=Widget) is ready
        )

    def test_construction_args_are_prepended(self):
        built = resolve_component(
            REGISTRY, "gadget", construction_args=("pfx",), size=3
        )
        assert built.prefix == "pfx"
        assert built.size == 3

    def test_instances_never_see_construction_args(self):
        ready = Gadget("pfx")
        resolved = resolve_component(
            REGISTRY, ready, instance_of=Gadget, construction_args=("other",)
        )
        assert resolved is ready


class TestErrors:
    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="unknown component 'nope'.*gadget, widget"):
            resolve_component(REGISTRY, "nope")

    def test_kind_names_the_family(self):
        with pytest.raises(KeyError, match="unknown restart policy"):
            resolve_component(REGISTRY, "nope", kind="restart policy")

    def test_mapping_without_name(self):
        with pytest.raises(TypeError, match="needs a 'name' entry"):
            resolve_component(REGISTRY, {"size": 3})

    def test_mapping_with_non_string_name(self):
        with pytest.raises(TypeError, match="needs a 'name' entry"):
            resolve_component(REGISTRY, {"name": 42})

    def test_unsupported_spec_type(self):
        with pytest.raises(TypeError, match="must be a name, a mapping"):
            resolve_component(REGISTRY, 42)

    def test_instance_shape_off_by_default(self):
        # Without instance_of, a ready instance is an unsupported type.
        with pytest.raises(TypeError, match="must be a name, a mapping"):
            resolve_component(REGISTRY, Widget())

    def test_kwargs_on_instance(self):
        with pytest.raises(TypeError, match="ready Widget instance"):
            resolve_component(REGISTRY, Widget(), instance_of=Widget, size=2)

    def test_unknown_constructor_keyword_propagates(self):
        with pytest.raises(TypeError):
            resolve_component(REGISTRY, "widget", bogus=1)


def test_component_names_sorted():
    assert component_names(REGISTRY) == ["gadget", "widget"]
