"""Tests for the executable theorems: determinacy, serialisability, Theorem 5."""

import pytest

from repro.core import (
    ModelError,
    ReadVariable,
    WriteVariable,
    brute_force_serialisable,
    check_determinacy,
    execution_serial_order,
    is_serialisable,
    serialisation_cycle,
    serialise,
    theorem_5_conditions,
)

from tests.conftest import fresh_builder, increment_via_read_write


class TestTheorem1Determinacy:
    def test_final_state_independent_of_topological_sort(self, serialisable_history):
        assert check_determinacy(serialisable_history, attempts=10, seed=3)

    def test_determinacy_also_holds_for_sg_cyclic_histories(self, non_serialisable_history):
        # Theorem 1 is about legality, not serialisability: even the
        # non-serialisable history replays to a unique final state.
        assert check_determinacy(non_serialisable_history, attempts=10, seed=3)


class TestTheorem2Serialisability:
    def test_acyclic_graph_implies_serialisable(self, serialisable_history):
        assert is_serialisable(serialisable_history)
        assert serialisation_cycle(serialisable_history) is None

    def test_cyclic_graph_reports_cycle(self, non_serialisable_history):
        assert not is_serialisable(non_serialisable_history)
        assert serialisation_cycle(non_serialisable_history)

    def test_serialise_produces_equivalent_serial_history(self, serialisable_history):
        serial = serialise(serialisable_history)
        assert serial.is_serial()
        assert serial.equivalent_to(serialisable_history)
        serial.check_legal()

    def test_serialise_rejects_cyclic_graph(self, non_serialisable_history):
        with pytest.raises(ModelError):
            serialise(non_serialisable_history)

    def test_serialise_respects_conflict_order(self, serialisable_history):
        serial = serialise(serialisable_history)
        order = execution_serial_order(serial)
        assert order.index("T1") < order.index("T2")

    def test_brute_force_oracle_agrees_with_theorem(self, serialisable_history, non_serialisable_history):
        assert brute_force_serialisable(serialisable_history)
        assert not brute_force_serialisable(non_serialisable_history)

    def test_brute_force_respects_candidate_limit(self, serialisable_history):
        with pytest.raises(ModelError):
            brute_force_serialisable(serialisable_history, candidate_limit=1)

    def test_nested_transaction_with_internal_structure_serialises(self):
        builder = fresh_builder({"A": {"x": 0}, "B": {"x": 0}, "C": {"x": 0}})
        first = builder.begin_top_level("t1")
        second = builder.begin_top_level("t2")
        # Interleave at different objects but with compatible orders.
        increment_via_read_write(builder, first, "A")
        increment_via_read_write(builder, second, "B")
        increment_via_read_write(builder, first, "B")
        increment_via_read_write(builder, second, "C")
        increment_via_read_write(builder, first, "C")
        history = builder.build(check=True)
        assert is_serialisable(history)
        serial = serialise(history)
        assert serial.is_serial()
        assert serial.equivalent_to(history)

    def test_serial_order_groups_descendants_with_ancestors(self, serialisable_history):
        order = execution_serial_order(serialisable_history)
        # Every child must appear somewhere after its top-level ancestor's
        # position and before the next top-level's children block ends; the
        # key property we require here is containment of relative order:
        t1_children = serialisable_history.children_of("T1")
        t2_children = serialisable_history.children_of("T2")
        for t1_child in t1_children:
            for t2_child in t2_children:
                assert order.index(t1_child) < order.index(t2_child)


class TestTheorem5ModularConditions:
    def test_conditions_hold_for_serialisable_history(self, serialisable_history):
        report = theorem_5_conditions(serialisable_history)
        assert report.holds
        assert bool(report)
        assert report.cyclic_objects == []
        assert report.cyclic_executions == []

    def test_conditions_fail_for_incompatible_object_orders(self, non_serialisable_history):
        report = theorem_5_conditions(non_serialisable_history)
        assert not report.holds
        assert "environment" in report.cyclic_objects

    def test_condition_b_detects_incompatible_parallel_messages(self):
        # One transaction issues two parallel messages to the same object;
        # their descendants conflict in both directions, so ->_e has a
        # cycle (condition (b) of Theorem 5 fails) even though there is only
        # one top-level transaction.
        builder = fresh_builder({"A": {"x": 0, "y": 0}})
        transaction = builder.begin_top_level()
        first = builder.invoke(transaction, "A", "m1", after=[])
        second = builder.invoke(transaction, "A", "m2", after=[])
        # Interleave: first writes x, second writes x (first before second),
        # then second writes y before first writes y.
        builder.local(first, WriteVariable("x", 1))
        builder.local(second, WriteVariable("x", 2))
        builder.local(second, WriteVariable("y", 2))
        builder.local(first, WriteVariable("y", 1))
        builder.finish(first)
        builder.finish(second)
        history = builder.build(check=True)
        report = theorem_5_conditions(history)
        assert not report.holds
        assert transaction.execution_id in report.cyclic_executions

    def test_read_only_transactions_always_satisfy_conditions(self):
        builder = fresh_builder({"A": {"x": 0}})
        for _ in range(3):
            transaction = builder.begin_top_level()
            child = builder.invoke(transaction, "A", "peek")
            builder.local(child, ReadVariable("x"))
            builder.finish(child, 0)
        history = builder.build(check=True)
        report = theorem_5_conditions(history)
        assert report.holds
        assert is_serialisable(history)
