"""Unit tests for serialisation graphs (Definitions 9 and 10)."""

from repro.core import (
    ReadVariable,
    WriteVariable,
    combined_object_graph,
    find_cycle,
    is_acyclic,
    message_relation,
    serialisation_graph,
    sg_local,
    sg_mesg,
)

from tests.conftest import fresh_builder, increment_via_read_write


class TestSerialisationGraph:
    def test_conflict_edges_point_in_temporal_order(self, serialisable_history):
        graph = serialisation_graph(serialisable_history)
        assert graph.has_edge("T1", "T2")
        assert not graph.has_edge("T2", "T1")

    def test_edges_connect_incomparable_executions_only(self, serialisable_history):
        graph = serialisation_graph(serialisable_history)
        for source, target in graph.edges:
            assert serialisable_history.are_incomparable(source, target)

    def test_edge_reasons_reference_witness_steps(self, serialisable_history):
        graph = serialisation_graph(serialisable_history)
        reasons = graph["T1"]["T2"]["reasons"]
        assert any(reason[0] == "conflict" for reason in reasons)

    def test_incompatible_orders_create_cycle(self, non_serialisable_history):
        graph = serialisation_graph(non_serialisable_history)
        assert not is_acyclic(graph)
        cycle = find_cycle(graph)
        assert cycle is not None and len(cycle) >= 2

    def test_acyclic_graph_has_no_cycle_reported(self, serialisable_history):
        assert find_cycle(serialisation_graph(serialisable_history)) is None

    def test_structure_edges_between_sequential_children(self):
        builder = fresh_builder({"A": {"x": 0}, "B": {"x": 0}})
        transaction = builder.begin_top_level()
        increment_via_read_write(builder, transaction, "A")
        increment_via_read_write(builder, transaction, "B")
        history = builder.build(check=True)
        graph = serialisation_graph(history)
        children = history.children_of(transaction.execution_id)
        assert graph.has_edge(children[0], children[1])
        reasons = graph[children[0]][children[1]]["reasons"]
        assert any(reason[0] == "structure" for reason in reasons)

    def test_no_structure_edges_between_parallel_children(self):
        builder = fresh_builder({"A": {"x": 0}, "B": {"x": 0}})
        transaction = builder.begin_top_level()
        # Issue the two messages with an explicitly empty programme order so
        # they model parallel invocations.
        first = builder.invoke(transaction, "A", "m", after=[])
        builder.local(first, ReadVariable("x"))
        builder.finish(first)
        second = builder.invoke(transaction, "B", "m", after=[])
        builder.local(second, ReadVariable("x"))
        builder.finish(second)
        history = builder.build(check=True)
        graph = serialisation_graph(history)
        assert not any(
            reason[0] == "structure"
            for _, _, data in graph.edges(data=True)
            for reason in data["reasons"]
        )

    def test_single_transaction_graph_is_edge_free_across_top_levels(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        increment_via_read_write(builder, transaction, "A")
        history = builder.build(check=True)
        graph = serialisation_graph(history)
        assert is_acyclic(graph)
        assert set(graph.nodes) == set(history.execution_ids())


class TestPerObjectGraphs:
    def test_sg_local_orders_conflicting_method_executions(self, serialisable_history):
        graph = sg_local(serialisable_history, "A")
        nodes = set(graph.nodes)
        assert nodes == {
            execution_id
            for execution_id, execution in serialisable_history.executions.items()
            if execution.object_name == "A"
        }
        assert len(graph.edges) >= 1
        for source, target in graph.edges:
            assert serialisable_history.are_incomparable(source, target)

    def test_sg_local_empty_for_untouched_object(self, serialisable_history):
        graph = sg_local(serialisable_history, "unused-object")
        assert len(graph.nodes) == 0

    def test_sg_mesg_on_environment_reflects_descendant_conflicts(self, serialisable_history):
        graph = sg_mesg(serialisable_history, "environment")
        assert graph.has_edge("T1", "T2")

    def test_combined_graph_acyclic_for_serialisable_history(self, serialisable_history):
        for object_name in ("environment", "A", "B"):
            assert is_acyclic(combined_object_graph(serialisable_history, object_name))

    def test_combined_graph_cyclic_for_non_serialisable_history(self, non_serialisable_history):
        assert not is_acyclic(combined_object_graph(non_serialisable_history, "environment"))


class TestMessageRelation:
    def test_sequential_messages_are_related_by_structure(self):
        builder = fresh_builder({"A": {"x": 0}, "B": {"x": 0}})
        transaction = builder.begin_top_level()
        increment_via_read_write(builder, transaction, "A")
        increment_via_read_write(builder, transaction, "B")
        history = builder.build(check=True)
        relation = message_relation(history, transaction.execution_id)
        messages = history.execution(transaction.execution_id).message_steps()
        assert relation.has_edge(messages[0].step_id, messages[1].step_id)

    def test_parallel_messages_with_conflicting_descendants_are_related(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        first = builder.invoke(transaction, "A", "m", after=[])
        write_first = builder.local(first, WriteVariable("x", 1))
        builder.finish(first)
        second = builder.invoke(transaction, "A", "m", after=[])
        builder.local(second, WriteVariable("x", 2))
        builder.finish(second)
        history = builder.build(check=True)
        relation = message_relation(history, transaction.execution_id)
        messages = history.execution(transaction.execution_id).message_steps()
        assert relation.has_edge(messages[0].step_id, messages[1].step_id)
        reasons = relation[messages[0].step_id][messages[1].step_id]["reasons"]
        assert any(reason[0] == "conflict" and reason[1] == write_first.step_id for reason in reasons)

    def test_leaf_execution_has_empty_relation(self, serialisable_history):
        child = serialisable_history.children_of("T1")[0]
        relation = message_relation(serialisable_history, child)
        assert len(relation.edges) == 0
