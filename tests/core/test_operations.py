"""Unit tests for local operations and steps."""

import pytest

from repro.core import (
    ABORTED,
    AbortOperation,
    FunctionalOperation,
    IncrementVariable,
    LocalStep,
    MessageStep,
    ObjectState,
    ReadVariable,
    WriteVariable,
)
from repro.core.errors import InvalidOperationError


class TestReadWriteIncrement:
    def test_read_returns_value_and_leaves_state_unchanged(self):
        state = ObjectState({"x": 10})
        value, new_state = ReadVariable("x").apply(state)
        assert value == 10
        assert new_state == state

    def test_read_missing_variable_returns_default(self):
        value, _ = ReadVariable("x", default=-1).apply(ObjectState())
        assert value == -1

    def test_write_sets_variable_and_returns_written_value(self):
        value, new_state = WriteVariable("x", 7).apply(ObjectState())
        assert value == 7
        assert new_state["x"] == 7

    def test_increment_returns_new_value(self):
        value, new_state = IncrementVariable("x", 5).apply(ObjectState({"x": 1}))
        assert value == 6
        assert new_state["x"] == 6

    def test_increment_of_missing_variable_starts_at_zero(self):
        value, _ = IncrementVariable("x").apply(ObjectState())
        assert value == 1

    def test_increment_non_numeric_raises(self):
        with pytest.raises(InvalidOperationError):
            IncrementVariable("x").apply(ObjectState({"x": "text"}))

    def test_read_write_sets_are_declared(self):
        assert ReadVariable("x").read_set() == {"x"}
        assert ReadVariable("x").write_set() == frozenset()
        assert WriteVariable("x", 1).write_set() == {"x"}
        assert IncrementVariable("x").read_set() == {"x"}
        assert ReadVariable("x").is_read_only()
        assert not WriteVariable("x", 1).is_read_only()

    def test_rho_and_sigma_views(self):
        operation = WriteVariable("x", 3)
        assert operation.return_value(ObjectState()) == 3
        assert operation.transition(ObjectState())["x"] == 3

    def test_operation_equality_by_signature(self):
        assert ReadVariable("x") == ReadVariable("x")
        assert ReadVariable("x") != ReadVariable("y")
        assert ReadVariable("x") != WriteVariable("x", 1)
        assert hash(ReadVariable("x")) == hash(ReadVariable("x"))

    def test_repr_contains_name_and_args(self):
        assert "Write" in repr(WriteVariable("x", 1))


class TestFunctionalOperation:
    def test_body_receives_state_and_args(self):
        def pop_front(state, count):
            items = list(state.get("items", []))
            taken, rest = items[:count], items[count:]
            return taken, state.set("items", rest)

        operation = FunctionalOperation("PopFront", pop_front, 2, reads={"items"}, writes={"items"})
        value, new_state = operation.apply(ObjectState({"items": [1, 2, 3]}))
        assert value == [1, 2]
        assert new_state["items"] == [3]
        assert operation.read_set() == {"items"}
        assert operation.write_set() == {"items"}

    def test_unknown_read_write_sets_default_to_none(self):
        operation = FunctionalOperation("Opaque", lambda state: (None, state))
        assert operation.read_set() is None
        assert operation.write_set() is None
        assert not operation.is_read_only()


class TestAbortOperation:
    def test_abort_has_no_state_effect(self):
        state = ObjectState({"x": 1})
        value, new_state = AbortOperation("boom").apply(state)
        assert value == ABORTED
        assert new_state == state

    def test_abort_step_detection(self):
        step = LocalStep("e1", "environment", AbortOperation(), ABORTED)
        assert step.is_abort()
        normal = LocalStep("e1", "A", ReadVariable("x"), 0)
        assert not normal.is_abort()


class TestSteps:
    def test_step_ids_are_unique_and_identity_based(self):
        first = LocalStep("e1", "A", ReadVariable("x"), 0)
        second = LocalStep("e1", "A", ReadVariable("x"), 0)
        assert first.step_id != second.step_id
        assert first != second
        assert first == first

    def test_local_and_message_classification(self):
        local = LocalStep("e1", "A", ReadVariable("x"), 0)
        message = MessageStep("e1", "B", "lookup", ("k",))
        assert local.is_local() and not local.is_message()
        assert message.is_message() and not message.is_local()

    def test_message_step_records_target_and_arguments(self):
        message = MessageStep("e1", "B", "lookup", ("k", 2), return_value="v")
        assert message.target_object == "B"
        assert message.target_method == "lookup"
        assert message.arguments == ("k", 2)
        assert message.return_value == "v"

    def test_explicit_step_id_is_respected(self):
        step = LocalStep("e1", "A", ReadVariable("x"), 0, step_id=123456)
        assert step.step_id == 123456

    def test_reprs_mention_step_identity(self):
        local = LocalStep("e1", "A", ReadVariable("x"), 0)
        message = MessageStep("e1", "B", "m")
        assert str(local.step_id) in repr(local)
        assert "B" in repr(message)
