"""Unit tests for ObjectState and the value helpers."""

import pytest

from repro.core import EMPTY_STATE, ObjectState
from repro.core.values import freeze, values_equal


class TestObjectState:
    def test_empty_state_has_no_variables(self):
        assert len(EMPTY_STATE) == 0
        assert list(EMPTY_STATE) == []

    def test_lookup_and_get(self):
        state = ObjectState({"x": 1, "y": "a"})
        assert state["x"] == 1
        assert state.get("y") == "a"
        assert state.get("missing", 42) == 42
        with pytest.raises(KeyError):
            state["missing"]

    def test_set_returns_new_state_and_preserves_original(self):
        original = ObjectState({"x": 1})
        updated = original.set("x", 2)
        assert original["x"] == 1
        assert updated["x"] == 2
        assert original != updated

    def test_update_applies_several_bindings(self):
        state = ObjectState({"x": 1}).update({"y": 2, "z": 3})
        assert dict(state) == {"x": 1, "y": 2, "z": 3}

    def test_remove_is_noop_for_missing_variable(self):
        state = ObjectState({"x": 1})
        assert state.remove("x") == ObjectState()
        assert state.remove("missing") == state

    def test_equality_is_structural(self):
        assert ObjectState({"x": [1, 2]}) == ObjectState({"x": (1, 2)})
        assert ObjectState({"x": 1}) == {"x": 1}
        assert ObjectState({"x": 1}) != ObjectState({"x": 2})

    def test_equality_with_non_mapping_is_not_implemented(self):
        assert (ObjectState({"x": 1}) == 17) is False

    def test_hashable_and_usable_as_dict_key(self):
        table = {ObjectState({"x": 1}): "one"}
        assert table[ObjectState({"x": 1})] == "one"

    def test_contains_and_len(self):
        state = ObjectState({"x": 1, "y": 2})
        assert "x" in state and "z" not in state
        assert len(state) == 2

    def test_as_dict_returns_mutable_copy(self):
        state = ObjectState({"x": 1})
        copy = state.as_dict()
        copy["x"] = 99
        assert state["x"] == 1

    def test_repr_lists_variables_sorted(self):
        assert repr(ObjectState({"b": 2, "a": 1})) == "ObjectState(a=1, b=2)"


class TestValueHelpers:
    def test_freeze_scalars_unchanged(self):
        assert freeze(5) == 5
        assert freeze("abc") == "abc"
        assert freeze(None) is None

    def test_freeze_list_and_tuple_agree(self):
        assert freeze([1, 2, 3]) == freeze((1, 2, 3))

    def test_freeze_nested_structures(self):
        frozen = freeze({"a": [1, {2, 3}], "b": {"c": "d"}})
        assert isinstance(frozen, tuple)
        hash(frozen)  # must be hashable

    def test_freeze_sets(self):
        assert freeze({3, 1, 2}) == frozenset({1, 2, 3})

    def test_values_equal_across_container_types(self):
        assert values_equal({"k": [1, 2]}, {"k": (1, 2)})
        assert not values_equal([1, 2], [2, 1])
