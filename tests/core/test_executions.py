"""Unit tests for method executions (Definition 4)."""

import pytest

from repro.core import (
    ENVIRONMENT_OBJECT,
    AbortOperation,
    LocalStep,
    MessageStep,
    MethodExecution,
    ReadVariable,
)
from repro.core.errors import ModelError
from repro.core.executions import execution_return_value


def make_execution(object_name="A"):
    return MethodExecution("e1", object_name, "method")


class TestAddStep:
    def test_sequential_steps_are_chained_in_program_order(self):
        execution = make_execution()
        first = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0))
        second = execution.add_step(LocalStep("e1", "A", ReadVariable("y"), 0))
        assert execution.program_precedes(first, second)
        assert not execution.program_precedes(second, first)

    def test_explicit_empty_after_models_parallel_steps(self):
        execution = make_execution()
        first = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0))
        second = execution.add_step(LocalStep("e1", "A", ReadVariable("y"), 0), after=[])
        assert not execution.program_precedes(first, second)
        assert not execution.program_precedes(second, first)

    def test_explicit_after_list(self):
        execution = make_execution()
        first = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0))
        second = execution.add_step(LocalStep("e1", "A", ReadVariable("y"), 0), after=[])
        third = execution.add_step(LocalStep("e1", "A", ReadVariable("z"), 0), after=[first, second])
        assert execution.program_precedes(first, third)
        assert execution.program_precedes(second, third)

    def test_program_precedes_is_transitive(self):
        execution = make_execution()
        steps = [execution.add_step(LocalStep("e1", "A", ReadVariable(str(i)), 0)) for i in range(4)]
        assert execution.program_precedes(steps[0], steps[3])

    def test_step_of_other_execution_rejected(self):
        execution = make_execution()
        with pytest.raises(ModelError):
            execution.add_step(LocalStep("other", "A", ReadVariable("x"), 0))

    def test_local_step_of_other_object_rejected(self):
        execution = make_execution("A")
        with pytest.raises(ModelError):
            execution.add_step(LocalStep("e1", "B", ReadVariable("x"), 0))

    def test_message_steps_may_target_any_object(self):
        execution = make_execution("A")
        message = execution.add_step(MessageStep("e1", "B", "lookup"))
        assert message in execution.message_steps()

    def test_duplicate_step_rejected(self):
        execution = make_execution()
        step = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0))
        with pytest.raises(ModelError):
            execution.add_step(step)

    def test_unknown_predecessor_rejected(self):
        execution = make_execution()
        with pytest.raises(ModelError):
            execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0), after=[999])


class TestOrderSteps:
    def test_explicit_order_constraint(self):
        execution = make_execution()
        first = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0), after=[])
        second = execution.add_step(LocalStep("e1", "A", ReadVariable("y"), 0), after=[])
        execution.order_steps(second, first)
        assert execution.program_precedes(second, first)

    def test_order_steps_requires_membership(self):
        execution = make_execution()
        step = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0))
        with pytest.raises(ModelError):
            execution.order_steps(step, 424242)


class TestInspection:
    def test_top_level_detection(self):
        top = MethodExecution("t", ENVIRONMENT_OBJECT, "txn")
        child = MethodExecution("t.1", "A", "m", parent_id="t", invoking_step_id=1)
        assert top.is_top_level
        assert not child.is_top_level

    def test_local_and_message_step_partition(self):
        execution = make_execution()
        local = execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 0))
        message = execution.add_step(MessageStep("e1", "B", "m"))
        assert execution.local_steps() == [local]
        assert execution.message_steps() == [message]
        assert len(execution) == 2
        assert list(iter(execution)) == [local, message]

    def test_is_aborted(self):
        execution = make_execution()
        assert not execution.is_aborted()
        execution.add_step(LocalStep("e1", "A", AbortOperation(), "aborted"))
        assert execution.is_aborted()

    def test_execution_return_value_uses_last_local_step(self):
        execution = make_execution()
        assert execution_return_value(execution) is None
        execution.add_step(LocalStep("e1", "A", ReadVariable("x"), 7))
        assert execution_return_value(execution) == 7

    def test_repr_mentions_parentage(self):
        top = MethodExecution("t", ENVIRONMENT_OBJECT, "txn")
        child = MethodExecution("t.1", "A", "m", parent_id="t", invoking_step_id=1)
        assert "top-level" in repr(top)
        assert "child of" in repr(child)
