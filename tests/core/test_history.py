"""Unit tests for histories: builder, legality, replay, equivalence, aborts."""

import pytest

from repro.core import (
    AUTO,
    ENVIRONMENT_OBJECT,
    History,
    HistoryBuilder,
    IllegalHistoryError,
    MethodExecution,
    ObjectState,
    PerObjectConflicts,
    ReadVariable,
    ReadWriteConflictSpec,
    WriteVariable,
)
from repro.core.errors import (
    IllegalStepSequenceError,
    ModelError,
    UnknownExecutionError,
    UnknownObjectError,
)
from repro.core.operations import LocalStep, MessageStep

from tests.conftest import fresh_builder, increment_via_read_write


def simple_history():
    """T1 bumps A once (via a nested method); returns the built history."""
    builder = fresh_builder({"A": {"x": 0}})
    transaction = builder.begin_top_level("t1")
    increment_via_read_write(builder, transaction, "A")
    return builder.build(check=True)


class TestHistoryBuilder:
    def test_auto_return_values_follow_object_state(self):
        builder = fresh_builder({"A": {"x": 5}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "read_x")
        step = builder.local(child, ReadVariable("x"))
        assert step.return_value == 5

    def test_explicit_return_value_overrides_auto(self):
        builder = fresh_builder({"A": {"x": 5}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "read_x")
        step = builder.local(child, ReadVariable("x"), return_value=99)
        assert step.return_value == 99

    def test_execution_ids_are_generated_hierarchically(self):
        builder = fresh_builder({"A": {}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        grandchild = builder.invoke(child, "A", "m2")
        assert transaction.execution_id == "T1"
        assert child.execution_id == "T1.1"
        assert grandchild.execution_id == "T1.1.1"

    def test_duplicate_execution_id_rejected(self):
        builder = fresh_builder()
        builder.begin_top_level(execution_id="T1")
        with pytest.raises(ModelError):
            builder.begin_top_level(execution_id="T1")

    def test_current_state_tracks_local_steps(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, WriteVariable("x", 3))
        assert builder.current_state("A")["x"] == 3

    def test_set_initial_state_before_steps(self):
        builder = fresh_builder()
        builder.set_initial_state("A", {"x": 9})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        step = builder.local(child, ReadVariable("x"))
        assert step.return_value == 9

    def test_set_initial_state_after_steps_rejected(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, WriteVariable("x", 1))
        with pytest.raises(ModelError):
            builder.set_initial_state("A", {"x": 5})

    def test_finish_records_message_return_value(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.finish(child, return_value="done")
        history = builder.build()
        message = history.message_steps()[0]
        assert message.return_value == "done"

    def test_unfinished_messages_are_closed_at_build(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, ReadVariable("x"))
        history = builder.build(check=True)
        assert history.is_legal()

    def test_unknown_execution_reference_raises(self):
        builder = fresh_builder()
        with pytest.raises(UnknownExecutionError):
            builder.local("missing", ReadVariable("x"))

    def test_abort_records_abort_step(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.abort(child, "failure")
        builder.finish(child, "aborted")
        builder.abort(transaction, "failure")
        history = builder.build(check=True)
        assert history.aborted_executions() == {child.execution_id, transaction.execution_id}


class TestAncestry:
    def test_parent_children_and_descendants(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        grandchild = builder.invoke(child, "A", "m2")
        history = builder.build()
        assert history.parent_of(child.execution_id) == transaction.execution_id
        assert history.children_of(transaction.execution_id) == [child.execution_id]
        assert set(history.descendants(transaction.execution_id)) == {
            transaction.execution_id,
            child.execution_id,
            grandchild.execution_id,
        }
        assert history.ancestors(grandchild.execution_id) == [
            child.execution_id,
            transaction.execution_id,
        ]
        assert history.level(grandchild.execution_id) == 2

    def test_comparability_and_lca(self):
        builder = fresh_builder({"A": {"x": 0}, "B": {"x": 0}})
        transaction = builder.begin_top_level()
        first_child = builder.invoke(transaction, "A", "m")
        second_child = builder.invoke(transaction, "B", "m")
        history = builder.build()
        assert history.are_comparable(transaction.execution_id, first_child.execution_id)
        assert history.are_incomparable(first_child.execution_id, second_child.execution_id)
        assert (
            history.least_common_ancestor([first_child.execution_id, second_child.execution_id])
            == transaction.execution_id
        )

    def test_lca_of_unrelated_top_levels_is_none(self):
        builder = fresh_builder()
        first = builder.begin_top_level()
        second = builder.begin_top_level()
        history = builder.build()
        assert history.least_common_ancestor([first.execution_id, second.execution_id]) is None
        assert history.least_common_ancestor([]) is None

    def test_top_level_executions_listed(self):
        builder = fresh_builder()
        first = builder.begin_top_level()
        second = builder.begin_top_level()
        history = builder.build()
        assert set(history.top_level_executions()) == {
            first.execution_id,
            second.execution_id,
        }


class TestTemporalOrder:
    def test_sequential_steps_are_ordered(self):
        history = simple_history()
        read, write = history.topological_local_order("A")
        assert history.precedes(read, write)
        assert not history.precedes(write, read)
        assert history.ordered(read, write)

    def test_message_step_spans_its_child(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        inner = builder.local(child, ReadVariable("x"))
        builder.finish(child)
        other = builder.begin_top_level()
        other_child = builder.invoke(other, "A", "m")
        later = builder.local(other_child, ReadVariable("x"))
        history = builder.build()
        message = history.execution(transaction.execution_id).message_steps()[0]
        # The message completed before the later local step started, and so
        # did its descendants (condition 2c via intervals).
        assert history.precedes(message, later)
        assert history.precedes(inner, later)

    def test_step_descendants(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        inner = builder.local(child, ReadVariable("x"))
        history = builder.build()
        message = history.execution(transaction.execution_id).message_steps()[0]
        assert history.step_descendant_steps(message) == {message.step_id, inner.step_id}
        assert history.step_descendant_steps(inner) == {inner.step_id}

    def test_order_pairs_derived_from_intervals(self):
        history = simple_history()
        read, write = history.topological_local_order("A")
        assert (read.step_id, write.step_id) in history.order_pairs()


class TestLegality:
    def test_builder_histories_are_legal(self, serialisable_history):
        serialisable_history.check_legal()
        assert serialisable_history.is_legal()

    def test_message_step_without_child_violates_condition_one(self):
        execution = MethodExecution("T1", ENVIRONMENT_OBJECT, "txn")
        execution.add_step(MessageStep("T1", "A", "m"))
        history = History([execution], {"A": ObjectState()})
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_legal()
        assert excinfo.value.condition == "1"

    def test_top_level_execution_outside_environment_is_illegal(self):
        execution = MethodExecution("T1", "A", "m")
        history = History([execution], {"A": ObjectState()})
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_legal()
        assert excinfo.value.condition == "1"

    def test_child_without_matching_message_is_illegal(self):
        parent = MethodExecution("T1", ENVIRONMENT_OBJECT, "txn")
        child = MethodExecution("T1.1", "A", "m", parent_id="T1", invoking_step_id=999)
        history = History([parent, child], {"A": ObjectState()})
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_legal()
        assert excinfo.value.condition == "1"

    def test_unordered_conflicting_steps_violate_condition_2b(self):
        parent = MethodExecution("T1", ENVIRONMENT_OBJECT, "txn")
        other = MethodExecution("T2", ENVIRONMENT_OBJECT, "txn")
        message_one = MessageStep("T1", "A", "m")
        message_two = MessageStep("T2", "A", "m")
        parent.add_step(message_one)
        other.add_step(message_two)
        child_one = MethodExecution(
            "T1.1", "A", "m", parent_id="T1", invoking_step_id=message_one.step_id
        )
        child_two = MethodExecution(
            "T2.1", "A", "m", parent_id="T2", invoking_step_id=message_two.step_id
        )
        write_one = LocalStep("T1.1", "A", WriteVariable("x", 1), 1)
        write_two = LocalStep("T2.1", "A", WriteVariable("x", 2), 2)
        child_one.add_step(write_one)
        child_two.add_step(write_two)
        history = History(
            [parent, other, child_one, child_two],
            {"A": ObjectState({"x": 0})},
            conflicts=PerObjectConflicts(default=ReadWriteConflictSpec()),
            order_pairs=[],  # no order between the conflicting writes
        )
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_legal()
        assert excinfo.value.condition == "2b"

    def test_program_order_not_respected_violates_condition_2a(self):
        execution = MethodExecution("T1", ENVIRONMENT_OBJECT, "txn")
        first = LocalStep("T1", ENVIRONMENT_OBJECT, WriteVariable("x", 1), 1)
        second = LocalStep("T1", ENVIRONMENT_OBJECT, WriteVariable("x", 2), 2)
        execution.add_step(first)
        execution.add_step(second)  # programme order: first prec second
        history = History(
            [execution],
            {ENVIRONMENT_OBJECT: ObjectState()},
            conflicts=PerObjectConflicts(default=ReadWriteConflictSpec()),
            order_pairs=[(second.step_id, first.step_id)],
        )
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_legal()
        assert excinfo.value.condition == "2a"

    def test_wrong_return_value_violates_condition_3(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, ReadVariable("x"), return_value=12345)
        history = builder.build()
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_legal()
        assert excinfo.value.condition == "3"

    def test_replay_strict_flag(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, ReadVariable("x"), return_value=12345)
        history = builder.build()
        with pytest.raises(IllegalStepSequenceError):
            history.replay("A")
        state = history.replay("A", strict=False)
        assert state["x"] == 0


class TestFinalStatesAndEquivalence:
    def test_final_states_reflect_all_writes(self, serialisable_history):
        finals = serialisable_history.final_states()
        assert finals["A"]["x"] == 2
        assert finals["B"]["x"] == 2

    def test_final_state_unknown_object_raises(self, serialisable_history):
        with pytest.raises(UnknownObjectError):
            serialisable_history.final_state("missing")

    def test_history_is_equivalent_to_itself(self, serialisable_history):
        assert serialisable_history.equivalent_to(serialisable_history)

    def test_histories_with_different_executions_are_not_equivalent(self):
        first = simple_history()
        second = simple_history()
        assert not first.equivalent_to(second)  # different step/execution identities

    def test_is_serial_detects_interleaving(self, serialisable_history):
        assert not serialisable_history.is_serial()

    def test_serial_history_of_one_transaction(self):
        history = simple_history()
        assert history.is_serial()


class TestAbortSemantics:
    def build_history_with_abort(self, abort_child: bool):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, ReadVariable("x"))
        if abort_child:
            builder.abort(child)
        builder.finish(child, "aborted" if abort_child else "ok")
        builder.abort(transaction)
        return builder.build()

    def test_abort_semantics_hold_when_children_abort_too(self):
        history = self.build_history_with_abort(abort_child=True)
        history.check_abort_semantics()

    def test_abort_semantics_violated_when_child_survives(self):
        history = self.build_history_with_abort(abort_child=False)
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_abort_semantics()
        assert excinfo.value.condition == "abort-b"

    def test_aborted_writer_with_visible_effect_violates_condition_a(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, WriteVariable("x", 7))
        builder.abort(child)
        builder.finish(child, "aborted")
        builder.abort(transaction)
        history = builder.build()
        with pytest.raises(IllegalHistoryError) as excinfo:
            history.check_abort_semantics()
        assert excinfo.value.condition == "abort-a"

    def test_replay_ignoring_aborted_executions(self):
        builder = fresh_builder({"A": {"x": 0}})
        transaction = builder.begin_top_level()
        child = builder.invoke(transaction, "A", "m")
        builder.local(child, WriteVariable("x", 7))
        builder.abort(child)
        builder.finish(child, "aborted")
        builder.abort(transaction)
        history = builder.build()
        state = history.replay("A", ignore_aborted=True, strict=False)
        assert state["x"] == 0
