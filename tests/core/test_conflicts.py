"""Unit tests for conflict specifications and commutativity checking."""

from repro.core import (
    ConflictTable,
    ConservativeConflictSpec,
    ExploredConflictSpec,
    IncrementVariable,
    LocalStep,
    ObjectState,
    PerObjectConflicts,
    ReadVariable,
    ReadWriteConflictSpec,
    WriteVariable,
    operations_commute_on_state,
    operations_commute_on_states,
    steps_commute_on_state,
    steps_commute_on_states,
)
from repro.core.operations import FunctionalOperation


class TestConservativeSpec:
    def test_everything_conflicts(self):
        spec = ConservativeConflictSpec()
        assert spec.operations_conflict(ReadVariable("x"), ReadVariable("x"))
        assert spec.operations_conflict(ReadVariable("x"), ReadVariable("y"))

    def test_step_level_falls_back_to_operation_level(self):
        spec = ConservativeConflictSpec()
        first = LocalStep("e1", "A", ReadVariable("x"), 0)
        second = LocalStep("e2", "A", ReadVariable("x"), 0)
        assert spec.steps_conflict(first, second)


class TestReadWriteSpec:
    def test_reads_of_same_variable_commute(self):
        spec = ReadWriteConflictSpec()
        assert not spec.operations_conflict(ReadVariable("x"), ReadVariable("x"))

    def test_read_conflicts_with_write_of_same_variable(self):
        spec = ReadWriteConflictSpec()
        assert spec.operations_conflict(ReadVariable("x"), WriteVariable("x", 1))
        assert spec.operations_conflict(WriteVariable("x", 1), ReadVariable("x"))

    def test_writes_of_different_variables_commute(self):
        spec = ReadWriteConflictSpec()
        assert not spec.operations_conflict(WriteVariable("x", 1), WriteVariable("y", 1))

    def test_writes_of_same_variable_conflict(self):
        spec = ReadWriteConflictSpec()
        assert spec.operations_conflict(WriteVariable("x", 1), WriteVariable("x", 2))

    def test_unknown_footprint_is_conservative(self):
        spec = ReadWriteConflictSpec()
        opaque = FunctionalOperation("Opaque", lambda state: (None, state))
        assert spec.operations_conflict(opaque, ReadVariable("x"))


class TestConflictTable:
    def test_symmetric_table(self):
        table = ConflictTable([("Enqueue", "Dequeue")])
        enqueue = FunctionalOperation("Enqueue", lambda s: (None, s))
        dequeue = FunctionalOperation("Dequeue", lambda s: (None, s))
        assert table.operations_conflict(enqueue, dequeue)
        assert table.operations_conflict(dequeue, enqueue)
        assert not table.operations_conflict(enqueue, enqueue)

    def test_asymmetric_table(self):
        table = ConflictTable([("A", "B")], symmetric=False)
        op_a = FunctionalOperation("A", lambda s: (None, s))
        op_b = FunctionalOperation("B", lambda s: (None, s))
        assert table.operations_conflict(op_a, op_b)
        assert not table.operations_conflict(op_b, op_a)

    def test_default_applies_to_unknown_operations(self):
        table = ConflictTable([("A", "B")], default=True)
        unknown = FunctionalOperation("Z", lambda s: (None, s))
        op_a = FunctionalOperation("A", lambda s: (None, s))
        assert table.operations_conflict(unknown, op_a)

    def test_mutual_exclusion_constructor(self):
        table = ConflictTable.mutual_exclusion(["Push", "Pop"])
        push = FunctionalOperation("Push", lambda s: (None, s))
        pop = FunctionalOperation("Pop", lambda s: (None, s))
        assert table.operations_conflict(push, push)
        assert table.operations_conflict(push, pop)

    def test_declared_pairs_exposed(self):
        table = ConflictTable([("A", "B")])
        assert ("A", "B") in table.declared_pairs()
        assert ("B", "A") in table.declared_pairs()


class TestPerObjectConflicts:
    def test_default_spec_used_for_unknown_objects(self):
        registry = PerObjectConflicts(default=ReadWriteConflictSpec())
        assert not registry["anything"].operations_conflict(
            ReadVariable("x"), ReadVariable("x")
        )

    def test_register_and_lookup(self):
        registry = PerObjectConflicts()
        registry.register("queue", ConflictTable([("Enqueue", "Dequeue")]))
        assert "queue" in list(registry)
        assert len(registry) == 1

    def test_steps_of_different_objects_never_conflict(self):
        registry = PerObjectConflicts()  # conservative default
        first = LocalStep("e1", "A", WriteVariable("x", 1), 1)
        second = LocalStep("e2", "B", WriteVariable("x", 2), 2)
        assert not registry.steps_conflict(first, second)

    def test_copy_is_independent(self):
        registry = PerObjectConflicts()
        clone = registry.copy()
        clone.register("A", ReadWriteConflictSpec())
        assert len(list(registry)) == 0


class TestSemanticCommutativity:
    def test_reads_commute_on_any_state(self):
        states = [ObjectState({"x": value}) for value in range(3)]
        assert operations_commute_on_states(ReadVariable("x"), ReadVariable("x"), states)

    def test_read_write_do_not_commute(self):
        state = ObjectState({"x": 0})
        assert not operations_commute_on_state(ReadVariable("x"), WriteVariable("x", 5), state)

    def test_blind_writes_do_not_commute(self):
        state = ObjectState({"x": 0})
        assert not operations_commute_on_state(WriteVariable("x", 1), WriteVariable("x", 2), state)

    def test_increments_commute_as_operations_only_when_returns_agree(self):
        # State-wise increments commute, but their return values swap, so at
        # the operation level (which compares return values too) they conflict.
        state = ObjectState({"x": 0})
        assert not operations_commute_on_state(
            IncrementVariable("x"), IncrementVariable("x"), state
        )

    def test_step_commutativity_is_vacuous_when_pair_not_legal(self):
        # Recorded return value 99 is impossible, so the pair is not legal on
        # the sample state and Definition 3 is vacuously satisfied.
        state = ObjectState({"x": 0})
        first = LocalStep("e1", "A", ReadVariable("x"), 99)
        second = LocalStep("e2", "A", WriteVariable("x", 5), 5)
        assert steps_commute_on_state(first, second, state)

    def test_step_commutativity_detects_real_conflicts(self):
        state = ObjectState({"x": 0})
        read = LocalStep("e1", "A", ReadVariable("x"), 0)
        write = LocalStep("e2", "A", WriteVariable("x", 5), 5)
        assert not steps_commute_on_state(read, write, state)
        # The other order: write then read returning 5 is legal; swapping
        # makes the read return 0, so they conflict in that direction too.
        read_after = LocalStep("e1", "A", ReadVariable("x"), 5)
        assert not steps_commute_on_states(write, read_after, [state])


class TestExploredConflictSpec:
    def sample_states(self):
        return [ObjectState({"x": value}) for value in (0, 1, 2)]

    def test_derives_read_read_commutativity(self):
        spec = ExploredConflictSpec(self.sample_states())
        assert not spec.operations_conflict(ReadVariable("x"), ReadVariable("x"))

    def test_derives_read_write_conflict(self):
        spec = ExploredConflictSpec(self.sample_states())
        assert spec.operations_conflict(ReadVariable("x"), WriteVariable("x", 9))

    def test_operation_verdicts_are_cached(self):
        spec = ExploredConflictSpec(self.sample_states())
        assert spec.operations_conflict(ReadVariable("x"), WriteVariable("x", 9))
        assert spec.operations_conflict(ReadVariable("x"), WriteVariable("x", 9))
        assert len(spec.sample_states) == 3

    def test_step_level_uses_return_values(self):
        spec = ExploredConflictSpec(self.sample_states())
        write = LocalStep("e1", "A", WriteVariable("y", 5), 5)
        read_other = LocalStep("e2", "A", ReadVariable("x"), 0)
        assert not spec.steps_conflict(write, read_other)
