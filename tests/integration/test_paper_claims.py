"""Integration tests for the paper's qualitative claims (small versions).

Each test is a miniature of one benchmark experiment (see EXPERIMENTS.md);
the benchmarks sweep parameters, these tests pin the direction of the
effect so regressions are caught by ``pytest`` alone.
"""

from __future__ import annotations

import pytest

from repro.analysis import certify_run
from repro.scheduler import make_scheduler
from repro.simulation import (
    BankingWorkload,
    HotspotWorkload,
    MixedWorkload,
    QueueWorkload,
    SimulationEngine,
)


def run(workload, scheduler_name, seed=0, **scheduler_kwargs):
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name, **scheduler_kwargs), seed=seed)
    engine.submit_all(specs)
    return engine.run()


class TestClaimSingleActiveCurtailsParallelism:
    """Section 1: one active method per object 'severely curtails parallelism'."""

    def test_waiting_ordering_on_mixed_workload(self):
        # Under the event-driven engine a parked frame consumes no ticks, so
        # curtailed parallelism shows up as *waiting* — transactions spend
        # more of the run parked behind coarse object locks — rather than as
        # busy-wait ticks inflating the makespan.
        workload_seed = 21
        coarse = run(MixedWorkload(transactions=10, seed=workload_seed), "single-active")
        fine = run(MixedWorkload(transactions=10, seed=workload_seed), "n2pl")
        assert coarse.metrics.blocked_ticks > fine.metrics.blocked_ticks
        assert coarse.metrics.blocked_fraction > fine.metrics.blocked_fraction


class TestClaimStepLevelLockingHelpsQueues:
    """Section 5.1: locking steps instead of operations admits more concurrency."""

    def test_step_level_blocks_less(self):
        workload_args = dict(queues=2, producers=8, consumers=8, initial_depth=10, seed=22)
        operation_level = run(QueueWorkload(**workload_args), "n2pl")
        step_level = run(QueueWorkload(**workload_args), "n2pl-step")
        assert step_level.metrics.blocked_ticks < operation_level.metrics.blocked_ticks
        assert step_level.metrics.total_ticks < operation_level.metrics.total_ticks

    def test_step_level_timestamping_aborts_less(self):
        workload_args = dict(queues=2, producers=8, consumers=8, initial_depth=10, seed=23)
        operation_level = run(QueueWorkload(**workload_args), "nto")
        step_level = run(QueueWorkload(**workload_args), "nto-step")
        assert step_level.metrics.aborted_attempts <= operation_level.metrics.aborted_attempts


class TestClaimBlockingVersusRestarting:
    """Section 5: N2PL blocks (and deadlocks); NTO aborts instead."""

    def test_contention_increases_deadlocks_for_n2pl_only(self):
        low = run(HotspotWorkload(transactions=10, hot_probability=0.2, seed=24), "n2pl")
        high = run(HotspotWorkload(transactions=10, hot_probability=0.9, seed=24), "n2pl")
        assert high.metrics.aborts_by_reason.get("deadlock", 0) >= low.metrics.aborts_by_reason.get(
            "deadlock", 0
        )
        nto_run = run(HotspotWorkload(transactions=10, hot_probability=0.9, seed=24), "nto")
        assert nto_run.metrics.aborts_by_reason.get("deadlock", 0) == 0
        assert nto_run.metrics.aborts_by_reason.get("timestamp", 0) > 0


class TestClaimIntraObjectAloneIsInsufficient:
    """Section 2: per-object serialisability does not imply global serialisability."""

    def make_workload(self, seed):
        return HotspotWorkload(
            transactions=8,
            hot_objects=3,
            cold_objects=4,
            hot_probability=0.9,
            operations_per_transaction=3,
            use_service_layer=False,
            seed=seed,
        )

    def test_local_timestamp_orders_can_be_globally_incompatible(self):
        violations = 0
        for seed in range(3):
            result = run(self.make_workload(seed), "modular-intra-only", seed=seed, default_strategy="timestamp")
            if not certify_run(result, check_legality=False).serialisable:
                violations += 1
        assert violations > 0

    def test_inter_object_coordination_restores_serialisability(self):
        for seed in range(3):
            result = run(self.make_workload(seed), "modular", seed=seed, default_strategy="timestamp")
            assert certify_run(result, check_legality=False).serialisable

    def test_uniform_local_2pl_is_a_local_atomicity_property(self):
        # Weihl's dynamic atomicity: if every object uses strict 2PL locally,
        # no inter-object coordination is needed (the paper's discussion of
        # local atomicity as a special case of its scheme).
        for seed in range(3):
            result = run(self.make_workload(seed), "modular-intra-only", seed=seed, default_strategy="locking")
            assert certify_run(result, check_legality=False).serialisable


class TestClaimOptimisticTradeoff:
    """Section 6: certifier-style schedulers trade blocking for abort risk."""

    def test_certifier_never_blocks_but_aborts_under_contention(self):
        workload = HotspotWorkload(transactions=10, hot_probability=0.8, seed=26)
        optimistic = run(workload, "certifier")
        assert optimistic.metrics.blocked_ticks == 0
        assert optimistic.metrics.aborts_by_reason.get("validation", 0) > 0
        assert certify_run(optimistic, check_legality=False).serialisable


class TestClaimNestingAndParallelismAreSupported:
    """Section 1(a)/(c): nested transactions with internal parallelism."""

    def test_payroll_transactions_use_parallel_children(self):
        workload = BankingWorkload(
            accounts=8, transactions=10, transfer_fraction=0.0, payroll_fraction=1.0, seed=27
        )
        result = run(workload, "n2pl")
        assert result.metrics.committed == 10
        history = result.history
        # Find a payroll transaction's teller call and check its deposits are
        # unordered in the programme order (parallel messages).
        found_parallel = False
        for execution in history.executions.values():
            if execution.method_name == "deposit_many":
                messages = execution.message_steps()
                if len(messages) >= 2 and not execution.program_precedes(messages[0], messages[1]):
                    found_parallel = True
        assert found_parallel
        assert certify_run(result, check_legality=False).correct
