"""Integration tests: every scheduler keeps every workload serialisable.

These tests realise Theorems 3 and 4 (and the correctness arguments for the
other schedulers) operationally: for a grid of workloads and schedulers the
committed projection of every simulated run must be legal, its
serialisation graph acyclic, and Theorem 5's conditions satisfied.
"""

from __future__ import annotations

import pytest

from repro.analysis import certify_run
from repro.scheduler import make_scheduler
from repro.simulation import (
    BankingWorkload,
    BTreeWorkload,
    HotspotWorkload,
    MixedWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
    SimulationEngine,
)

CORRECT_SCHEDULERS = [
    ("n2pl", {}),
    ("n2pl-step", {}),
    ("nto", {}),
    ("nto-step", {}),
    ("single-active", {}),
    ("certifier", {}),
    ("modular", {}),
    ("modular", {"default_strategy": "timestamp"}),
]


def small_workloads():
    return [
        BankingWorkload(accounts=6, transactions=8, payroll_fraction=0.2, seed=1),
        QueueWorkload(queues=2, producers=4, consumers=4, initial_depth=6, seed=2),
        HotspotWorkload(transactions=6, hot_objects=2, cold_objects=8, hot_probability=0.6, seed=3),
        BTreeWorkload(transactions=6, operations_per_transaction=3, seed=4),
        MixedWorkload(customers=4, transactions=8, seed=5),
        RandomOperationsWorkload(
            registers=8, transactions=6, nesting_depth=3, parallel_fanout=2, seed=6
        ),
    ]


def run(workload, scheduler_name, kwargs, seed=0):
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name, **kwargs), seed=seed)
    engine.submit_all(specs)
    return engine.run()


@pytest.mark.parametrize("scheduler_name,scheduler_kwargs", CORRECT_SCHEDULERS)
def test_committed_projection_is_serialisable(scheduler_name, scheduler_kwargs):
    for workload in small_workloads():
        result = run(workload, scheduler_name, scheduler_kwargs)
        report = certify_run(result, check_legality=False)
        assert report.serialisable, (
            f"{scheduler_name} produced a non-serialisable committed projection on "
            f"{type(workload).__name__}: {report.violations}"
        )
        assert report.theorem5_holds


@pytest.mark.parametrize("scheduler_name,scheduler_kwargs", CORRECT_SCHEDULERS)
def test_committed_projection_is_legal(scheduler_name, scheduler_kwargs):
    # Legality checking is quadratic, so use the two smallest workloads only.
    workloads = [
        BankingWorkload(accounts=4, transactions=6, seed=7),
        QueueWorkload(queues=1, producers=3, consumers=3, initial_depth=4, seed=8),
    ]
    for workload in workloads:
        result = run(workload, scheduler_name, scheduler_kwargs)
        report = certify_run(result, check_legality=True)
        assert report.legal, f"{scheduler_name}: {report.violations}"
        assert report.correct


def test_all_submitted_transactions_eventually_finish():
    for scheduler_name, kwargs in CORRECT_SCHEDULERS:
        workload = BankingWorkload(accounts=6, transactions=12, seed=9)
        result = run(workload, scheduler_name, kwargs)
        finished = result.metrics.committed + result.metrics.gave_up
        assert finished == result.metrics.submitted == 12


def test_banking_conservation_across_schedulers():
    for scheduler_name, kwargs in CORRECT_SCHEDULERS:
        workload = BankingWorkload(
            accounts=6, transactions=12, transfer_fraction=0.8, payroll_fraction=0.0, seed=10
        )
        result = run(workload, scheduler_name, kwargs)
        finals = result.final_states()
        total = sum(finals[name]["balance"] for name in finals if name.startswith("account-"))
        assert total == pytest.approx(workload.expected_total_balance()), scheduler_name


def test_nto_never_blocks_and_n2pl_never_timestamp_aborts():
    workload = HotspotWorkload(transactions=10, hot_probability=0.7, seed=11)
    nto_result = run(workload, "nto", {})
    assert nto_result.metrics.blocked_ticks == 0
    assert nto_result.metrics.aborts_by_reason.get("deadlock", 0) == 0

    n2pl_result = run(workload, "n2pl", {})
    assert n2pl_result.metrics.aborts_by_reason.get("timestamp", 0) == 0


def test_single_active_blocks_more_than_fine_grained_on_shared_objects():
    workload_args = dict(transactions=12, operations_per_transaction=4, seed=12)
    coarse = run(BTreeWorkload(**workload_args), "single-active", {})
    fine = run(BTreeWorkload(**workload_args), "n2pl", {})
    assert coarse.metrics.blocked_ticks > fine.metrics.blocked_ticks
    assert coarse.metrics.total_ticks > fine.metrics.total_ticks
