"""Open-system streaming runs: latency metrics, determinism, live-state GC.

The garbage collector must be *invisible* except in memory: the oracle
tests below run streaming scenarios with ``check=True`` (certifier
commit decisions revalidated against the legacy re-enumeration) and
``check_undo=True`` (incremental undo cross-checked against full
replay), both with an aggressively small ``gc_interval`` so collection
happens constantly while the oracles watch.
"""

import pytest

from repro.analysis import certify_run
from repro.core.errors import SimulationError, UnknownMethodError
from repro.scheduler import make_scheduler
from repro.simulation import SimulationEngine, make_workload
from repro.sweep import summarise_run


def build_stream_engine(
    scheduler_name,
    *,
    transactions=60,
    rate=0.05,
    seed=7,
    scheduler_kwargs=None,
    hot_probability=0.2,
    **engine_params,
):
    workload = make_workload(
        "hotspot",
        transactions=transactions,
        hot_probability=hot_probability,
        cold_objects=64,
        operations_per_transaction=2,
        use_service_layer=False,
        seed=3,
    )
    base, specs = workload.build()
    scheduler = make_scheduler(scheduler_name, **(scheduler_kwargs or {}))
    engine = SimulationEngine(base, scheduler, seed=seed, **engine_params)
    return engine, specs, {"name": "poisson", "rate": rate}


class TestRunStream:
    def test_all_arrivals_commit(self):
        engine, specs, arrival = build_stream_engine(
            "n2pl", scheduler_kwargs={"restart_policy": "backoff"}
        )
        result = engine.run_stream(specs, arrival)
        metrics = result.metrics
        assert metrics.arrived == len(specs)
        assert metrics.submitted == len(specs)
        assert metrics.committed == len(specs)
        assert metrics.latency_count == metrics.committed
        assert metrics.mean_latency > 0
        assert metrics.latency_max >= metrics.mean_latency
        assert 0 < metrics.in_flight_peak <= len(specs)

    def test_arrivals_spread_over_time(self):
        # With a slow stream the system never holds the whole batch: the
        # in-flight peak stays well below the closed-batch equivalent.
        engine, specs, arrival = build_stream_engine("n2pl", rate=0.01)
        streamed = engine.run_stream(specs, arrival)
        assert streamed.metrics.in_flight_peak < len(specs) / 2
        closed_engine, specs2, _ = build_stream_engine("n2pl", rate=0.01)
        closed_engine.submit_all(specs2)
        closed = closed_engine.run()
        assert closed.metrics.in_flight_peak == len(specs2)
        # The stream stretches the makespan to (at least) the arrival span.
        assert streamed.metrics.total_ticks > closed.metrics.total_ticks

    def test_streamed_run_is_deterministic(self):
        rows = []
        for _ in range(2):
            engine, specs, arrival = build_stream_engine(
                "nto-step",
                scheduler_kwargs={"restart_policy": "backoff"},
                gc_interval=8,
            )
            result = engine.run_stream(specs, arrival)
            row = summarise_run(result, "nto-step", certify=True, check_legality=True)
            rows.append((row, result.committed_transaction_ids))
        assert rows[0] == rows[1]

    def test_streamed_history_certifies(self):
        engine, specs, arrival = build_stream_engine(
            "certifier", scheduler_kwargs={"restart_policy": "backoff"}
        )
        result = engine.run_stream(specs, arrival)
        report = certify_run(result, check_legality=True)
        assert report.serialisable is True
        assert report.legal is True

    def test_arrival_description_recorded(self):
        engine, specs, arrival = build_stream_engine("n2pl")
        result = engine.run_stream(specs, arrival)
        assert result.arrival_description == {"name": "poisson", "rate": 0.05}
        closed_engine, specs2, _ = build_stream_engine("n2pl")
        closed_engine.submit_all(specs2)
        assert closed_engine.run().arrival_description is None

    def test_run_stream_is_single_use(self):
        engine, specs, arrival = build_stream_engine("n2pl")
        engine.run_stream(specs, arrival)
        with pytest.raises(SimulationError, match="single-use"):
            engine.submit_stream(specs, arrival)

    def test_truncated_stream_raises_instead_of_dropping_arrivals(self):
        # A tick cap that cuts the arrival schedule short must refuse the
        # run: at rate 0.05 the 60-transaction schedule stretches far past
        # 40 ticks, so arrivals are still queued when the cap lands.
        engine, specs, arrival = build_stream_engine("n2pl", max_ticks=40)
        with pytest.raises(SimulationError, match="undelivered"):
            engine.run_stream(specs, arrival)

    def test_truncation_of_in_flight_work_still_tolerated(self):
        # Once every arrival is delivered, cutting the *processing* short is
        # a truncated-but-valid run (the pre-PR behaviour): only dropped
        # arrivals are an error.  A closed batch enters at tick 0, so a tiny
        # cap truncates mid-processing with nothing left on the event heap.
        engine, specs, _ = build_stream_engine("n2pl", max_ticks=5)
        engine.submit_all(specs)
        result = engine.run()
        assert result.metrics.total_ticks <= 5
        assert result.metrics.committed < len(specs)

    def test_unknown_arrival_process(self):
        engine, specs, _ = build_stream_engine("n2pl")
        with pytest.raises(KeyError, match="unknown arrival process"):
            engine.submit_stream(specs, "nope")

    def test_unknown_method_rejected_eagerly(self):
        engine, _, arrival = build_stream_engine("n2pl")
        with pytest.raises(UnknownMethodError):
            engine.submit_stream(["no-such-method"], arrival)

    def test_bad_gc_interval(self):
        workload = make_workload("hotspot", transactions=2)
        base, _ = workload.build()
        with pytest.raises(SimulationError, match="gc_interval"):
            SimulationEngine(base, make_scheduler("n2pl"), gc_interval=0)


class TestGarbageCollectionOracles:
    """GC must never change a decision — only memory."""

    def test_certifier_check_oracle_over_stream(self):
        # check=True revalidates every commit against the legacy
        # re-enumeration (restricted to what survives GC); gc_interval=4
        # keeps the collector running constantly under the oracle.
        engine, specs, arrival = build_stream_engine(
            "certifier",
            scheduler_kwargs={"restart_policy": "backoff", "check": True},
            gc_interval=4,
        )
        result = engine.run_stream(specs, arrival)
        assert result.metrics.committed == len(specs)
        assert certify_run(result, check_legality=True).legal is True

    def test_undo_oracle_over_contended_stream(self):
        # Hot contention forces aborts mid-stream; check_undo replays the
        # full log after every abort and must agree with incremental undo
        # even though collect() constantly drops committed prefixes.
        engine, specs, arrival = build_stream_engine(
            "nto-step",
            hot_probability=0.6,
            scheduler_kwargs={"restart_policy": "backoff"},
            gc_interval=4,
            check_undo=True,
        )
        result = engine.run_stream(specs, arrival)
        assert result.metrics.aborted_attempts > 0, "scenario lost its contention"
        assert certify_run(result, check_legality=True).legal is True

    @pytest.mark.parametrize("scheduler_name", ["certifier", "modular"])
    def test_gc_prunes_and_decisions_match_gc_off(self, scheduler_name):
        # The same stream with GC effectively disabled (huge interval)
        # must produce the identical run — commits, order, metrics other
        # than the gauge itself.
        outcomes = []
        for gc_interval in (4, 10**9):
            engine, specs, arrival = build_stream_engine(
                scheduler_name,
                scheduler_kwargs={"restart_policy": "backoff"},
                gc_interval=gc_interval,
            )
            result = engine.run_stream(specs, arrival)
            outcomes.append(
                (
                    result.committed_transaction_ids,
                    result.metrics.committed,
                    result.metrics.aborted_attempts,
                    result.metrics.total_ticks,
                )
            )
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("scheduler_name", ["certifier", "nto-step", "modular"])
    def test_collector_reports_pruned_records(self, scheduler_name):
        engine, specs, arrival = build_stream_engine(
            scheduler_name,
            scheduler_kwargs={"restart_policy": "backoff"},
            gc_interval=8,
        )
        result = engine.run_stream(specs, arrival)
        assert result.scheduler_description["gc_pruned_records"] > 0


class TestLiveStateGauge:
    """Retained state is O(in-flight), not O(total arrivals)."""

    @pytest.mark.parametrize("scheduler_name", ["n2pl", "nto-step", "certifier", "modular"])
    def test_gauge_flat_across_stream_lengths(self, scheduler_name):
        peaks = {}
        for transactions in (120, 480):
            engine, specs, arrival = build_stream_engine(
                scheduler_name,
                transactions=transactions,
                rate=0.04,
                hot_probability=0.05,
                scheduler_kwargs={"restart_policy": "backoff"},
                gc_interval=16,
            )
            result = engine.run_stream(specs, arrival)
            metrics = result.metrics
            assert metrics.committed == transactions
            assert metrics.live_state_samples > 0
            peaks[transactions] = (metrics.live_state_peak, metrics.in_flight_peak)
        short_peak, short_inflight = peaks[120]
        long_peak, long_inflight = peaks[480]
        # 4x the arrivals must not mean 4x the retained state.  The peak
        # tracks the in-flight population (whose own peak deepens slowly
        # with the run length — a queueing tail effect — hence the
        # normalisation), never the arrival count.
        short_ratio = short_peak / max(1, short_inflight)
        long_ratio = long_peak / max(1, long_inflight)
        assert long_ratio <= 3 * max(short_ratio, 5), (
            f"{scheduler_name}: live state per in-flight transaction grew "
            f"{short_ratio:.1f} -> {long_ratio:.1f} with the stream length "
            f"(peaks {short_peak} -> {long_peak}, "
            f"in-flight {short_inflight} -> {long_inflight})"
        )
        # The retention window spans the in-flight transactions plus at
        # most gc_interval resolved-but-not-yet-collected ones (sampling
        # happens just before each pruning pass).
        assert long_peak <= 15 * (long_inflight + 16)
        assert long_peak < 480, (
            f"{scheduler_name}: retained state {long_peak} is on the order of "
            "the total arrival count"
        )

    @pytest.mark.parametrize("scheduler_name", ["nto-step", "certifier", "modular"])
    def test_gc_shrinks_peak_versus_gc_off(self, scheduler_name):
        # The discriminating experiment: the identical stream with the
        # collector effectively disabled retains O(arrivals) state.
        peaks = {}
        for gc_interval in (16, 10**9):
            engine, specs, arrival = build_stream_engine(
                scheduler_name,
                transactions=360,
                rate=0.04,
                hot_probability=0.05,
                scheduler_kwargs={"restart_policy": "backoff"},
                gc_interval=gc_interval,
            )
            result = engine.run_stream(specs, arrival)
            peaks[gc_interval] = result.metrics.live_state_peak
        assert peaks[16] * 4 < peaks[10**9], (
            f"{scheduler_name}: GC made no difference "
            f"({peaks[16]} vs {peaks[10 ** 9]} without collection)"
        )

    @pytest.mark.parametrize("scheduler_name", ["nto-step", "certifier"])
    def test_streaming_certifier_window_is_collected(self, scheduler_name):
        # The discriminating experiment for the *certifier's* retained
        # window: the identical certified stream with collection disabled
        # accumulates O(arrivals) state (every committed subtree's steps,
        # graph nodes and replay entries stay forever), while the
        # GC-enabled run stays within the O(in-flight + gc_interval)
        # retention window.
        peaks = {}
        for gc_interval in (16, 10**9):
            engine, specs, arrival = build_stream_engine(
                scheduler_name,
                transactions=480,
                rate=0.04,
                hot_probability=0.05,
                scheduler_kwargs={"restart_policy": "backoff"},
                gc_interval=gc_interval,
                certify="stream",
            )
            result = engine.run_stream(specs, arrival)
            report = result.streaming_report
            assert report.serialisable is True
            assert report.legal is True
            assert report.committed_transactions == 480
            peaks[gc_interval] = (
                result.metrics.live_state_peak,
                result.metrics.in_flight_peak,
            )
        bounded_peak, in_flight = peaks[16]
        unbounded_peak, _ = peaks[10**9]
        assert bounded_peak * 4 < unbounded_peak, (
            f"{scheduler_name}: certifier GC made no difference to the gauge "
            f"({bounded_peak} vs {unbounded_peak} without collection)"
        )
        # Same bound shape as E15/E17: the certifier's window adds a
        # constant factor over the retention window, never O(arrivals).
        assert bounded_peak <= 64 * (max(1, in_flight) + 16), (
            f"{scheduler_name}: certified live-state peak {bounded_peak} "
            f"exceeds the retention-window bound (in-flight {in_flight})"
        )

    def test_invalid_certify_mode_rejected_eagerly(self):
        workload = make_workload("hotspot", transactions=2)
        base, _ = workload.build()
        for bad in ("bogus", True, 1):
            with pytest.raises(SimulationError, match="certify"):
                SimulationEngine(base, make_scheduler("n2pl"), certify=bad)

    def test_gauge_counts_scheduler_and_undo_state(self):
        engine, specs, arrival = build_stream_engine(
            "certifier",
            scheduler_kwargs={"restart_policy": "backoff"},
            gc_interval=8,
        )
        result = engine.run_stream(specs, arrival)
        assert result.metrics.live_state_peak > 0
        assert result.metrics.live_state_ratio_peak > 0


class TestClosedModeUnchanged:
    def test_closed_batch_reports_no_arrivals(self):
        engine, specs, _ = build_stream_engine(
            "n2pl", scheduler_kwargs={"restart_policy": "backoff"}
        )
        engine.submit_all(specs)
        result = engine.run()
        metrics = result.metrics
        assert metrics.arrived == 0
        assert metrics.committed == len(specs)
        # Closed submissions arrive at tick 0, so their latency is simply
        # their commit tick; the aggregates stay meaningful.
        assert metrics.latency_count == metrics.committed
        assert metrics.in_flight_peak == len(specs)
