"""The event-driven hot loop against its bit-identity oracle.

The PR-6 rewrite replaced the per-tick frame scan with a maintained ready
list and a unified event heap (``hot_loop="event"``), keeping the legacy
scan loop (``hot_loop="scan"``) precisely so the two can be compared: the
refactor's contract is that *every* observable of a run — metrics,
committed order, aborted executions, the trace, the recorded history — is
bit-identical under both strategies, for every scheduler, restart policy,
commit-gate mode, scheduling policy and seed.

A second contract rides along: the hot record types are ``__slots__``-ed
(the rewrite's memory/speed pass), and a slotted type silently regaining a
``__dict__`` is a regression this file fails loudly on.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.executions import MethodExecution
from repro.core.operations import LocalStep
from repro.core.state import AppliedStep, ObjectState
from repro.objectbase.adts.register import WriteRegister
from repro.scheduler import make_scheduler
from repro.scheduler.base import ExecutionInfo, OperationRequest, SchedulerResponse
from repro.scheduler.certifier import _CandidateEdge
from repro.scheduler.locks import LockEntry
from repro.scheduler.nto import _StepRecord
from repro.scheduler.recovery import _GateRecord
from repro.simulation.engine import _Frame
from repro.simulation.events import TraceEvent
from repro.simulation.transactions import MethodContext
from repro.simulation.workloads import make_workload

#: Schedulers whose factories accept the CommitGate ``gate_mode`` axis.
GATE_AWARE = {"nto", "nto-step", "certifier", "modular"}

scheduler_names = st.sampled_from(
    ["n2pl", "n2pl-step", "nto", "nto-step", "single-active", "certifier", "modular"]
)
restart_policies = st.sampled_from(["immediate", "backoff", "ordered"])
gate_modes = st.sampled_from(["cascade", "aca"])
scheduling_policies = st.sampled_from(["random", "round-robin"])


def contended_engine(scheduler, *, seed, scheduling, hot_loop, stream):
    """A small but genuinely contended scenario (parks, aborts, restarts)."""
    workload = make_workload(
        "hotspot",
        transactions=14,
        hot_objects=2,
        cold_objects=8,
        operations_per_transaction=3,
        hot_probability=0.7,
        seed=seed,
    )
    base, specs = workload.build()
    from repro.simulation import SimulationEngine

    engine = SimulationEngine(
        base,
        scheduler,
        seed=seed,
        scheduling=scheduling,
        hot_loop=hot_loop,
        record_trace=True,
    )
    if stream:
        engine.submit_stream(specs, {"name": "poisson", "rate": 0.2})
    else:
        engine.submit_all(specs)
    return engine


def observables(result):
    """Everything a run exposes, in directly comparable form.

    Step ids come from a process-global counter, so two runs in the same
    process number their (otherwise identical) steps differently; the ids
    are masked and the steps compared in creation order instead.
    """
    steps = sorted(result.history.steps(), key=lambda step: step.step_id)
    return (
        result.metrics.as_dict(),
        result.committed_transaction_ids,
        result.aborted_execution_ids,
        tuple(result.trace.events),
        repr(result.history),
        [
            (step.execution_id, re.sub(r"id=\d+", "id=*", repr(step)))
            for step in steps
        ],
    )


class TestEventLoopBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        scheduler=scheduler_names,
        policy=restart_policies,
        gate_mode=gate_modes,
        scheduling=scheduling_policies,
        stream=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    def test_event_equals_scan(self, scheduler, policy, gate_mode, scheduling, stream, seed):
        kwargs = {"restart_policy": policy}
        if scheduler in GATE_AWARE:
            kwargs["gate_mode"] = gate_mode
        results = []
        for hot_loop in ("event", "scan"):
            engine = contended_engine(
                make_scheduler(scheduler, **kwargs),
                seed=seed,
                scheduling=scheduling,
                hot_loop=hot_loop,
                stream=stream,
            )
            results.append(engine.run())
        event, scan = results
        assert observables(event) == observables(scan)

    def test_unknown_hot_loop_is_rejected(self):
        from repro.simulation import SimulationEngine
        from repro.simulation.engine import SimulationError

        workload = make_workload("hotspot", transactions=2, seed=1)
        base, _ = workload.build()
        with pytest.raises(SimulationError):
            SimulationEngine(base, make_scheduler("n2pl"), hot_loop="warp")


#: Every hot record type the rewrite slotted.  A class in this list whose
#: MRO (below ``object``) re-introduces ``__dict__`` fails the audit.
SLOTTED_HOT_TYPES = [
    _Frame,
    MethodExecution,
    _CandidateEdge,
    _GateRecord,
    _StepRecord,
    LockEntry,
    AppliedStep,
    MethodContext,
    TraceEvent,
    ExecutionInfo,
    OperationRequest,
    SchedulerResponse,
]


class TestSlottedHotRecords:
    @pytest.mark.parametrize(
        "hot_type", SLOTTED_HOT_TYPES, ids=lambda t: t.__name__
    )
    def test_hot_type_has_no_instance_dict(self, hot_type):
        offenders = [
            klass.__name__
            for klass in hot_type.__mro__
            if klass is not object and "__dict__" in vars(klass)
        ]
        assert not offenders, (
            f"{hot_type.__name__} regained an instance __dict__ via {offenders}; "
            "hot records must stay __slots__-only"
        )

    def test_instances_reject_dynamic_attributes(self):
        operation = WriteRegister(7)
        instances = [
            MethodExecution("T1", "environment", "txn"),
            MethodContext("A", "T1", "txn"),
            LockEntry("T1", "A", operation),
            AppliedStep("T1.1", "T1", "A", operation, ObjectState()),
            TraceEvent(0, "BEGIN", "T1"),
            LocalStep("T1", "environment", operation, None),
        ]
        for instance in instances:
            # Frozen slotted dataclasses raise TypeError on 3.11 (the
            # regenerated class confuses the frozen __setattr__'s zero-arg
            # super, CPython gh-90562); either way the attribute must be
            # rejected.
            with pytest.raises((AttributeError, TypeError)):
                instance.definitely_not_a_slot = 1
