"""Unit tests for method contexts, requests and transaction specs."""

import pytest

from repro.core import ReadVariable
from repro.core.errors import SimulationError
from repro.simulation import (
    InvokeRequest,
    LocalRequest,
    MethodContext,
    ParallelRequest,
    TransactionSpec,
)


@pytest.fixture
def context():
    return MethodContext("account-1", "T1.1", "transfer")


class TestMethodContext:
    def test_local_wraps_operation(self, context):
        request = context.local(ReadVariable("x"))
        assert isinstance(request, LocalRequest)
        assert request.operation == ReadVariable("x")

    def test_local_rejects_non_operations(self, context):
        with pytest.raises(SimulationError):
            context.local("not an operation")

    def test_invoke_builds_request(self, context):
        request = context.invoke("account-2", "deposit", 10)
        assert isinstance(request, InvokeRequest)
        assert request.object_name == "account-2"
        assert request.method_name == "deposit"
        assert request.arguments == (10,)

    def test_call_is_an_alias_of_invoke(self, context):
        assert context.call("a", "m", 1) == context.invoke("a", "m", 1)

    def test_parallel_groups_invocations(self, context):
        request = context.parallel(context.call("a", "m"), context.call("b", "m"))
        assert isinstance(request, ParallelRequest)
        assert len(request.invocations) == 2

    def test_parallel_flattens_nested_parallel(self, context):
        inner = context.parallel(context.call("a", "m"))
        request = context.parallel(inner, context.call("b", "m"))
        assert len(request.invocations) == 2

    def test_parallel_requires_invocations(self, context):
        with pytest.raises(SimulationError):
            context.parallel()
        with pytest.raises(SimulationError):
            context.parallel("nonsense")

    def test_repr_mentions_identity(self, context):
        assert "account-1" in repr(context)
        assert "T1.1" in repr(context)


class TestTransactionSpec:
    def test_label_defaults_to_method_name(self):
        spec = TransactionSpec("transfer", ("a", "b", 10))
        assert spec.label == "transfer"

    def test_explicit_label_preserved(self):
        spec = TransactionSpec("transfer", (), label="payroll run")
        assert spec.label == "payroll run"

    def test_metadata_dict_is_per_instance(self):
        first = TransactionSpec("t")
        second = TransactionSpec("t")
        first.metadata["key"] = 1
        assert second.metadata == {}
