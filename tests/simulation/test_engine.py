"""Tests for the simulation engine: execution, nesting, aborts, metrics."""

import pytest

from repro.core import ENVIRONMENT_OBJECT
from repro.core.errors import SimulationError, UnknownMethodError
from repro.objectbase import MethodDefinition, ObjectBase, ObjectDefinition
from repro.objectbase.adts import counter_definition, register_definition
from repro.scheduler import NestedTwoPhaseLocking, Scheduler, make_scheduler
from repro.scheduler.base import SchedulerResponse
from repro.simulation import SimulationEngine, TransactionSpec
from repro.simulation.events import ABORTED, COMMITTED


def two_register_base():
    """Two registers plus transactions that exercise nesting and parallelism."""
    base = ObjectBase()
    base.register(register_definition("left", 0))
    base.register(register_definition("right", 0))
    base.register(counter_definition("tally", 0))

    service = ObjectDefinition(name="copier")

    def copy(ctx, source, destination):
        value = yield ctx.invoke(source, "read")
        yield ctx.invoke(destination, "write", value)
        return value

    service.add_method(MethodDefinition("copy", copy))
    base.register(service)

    def set_both(ctx, value):
        yield ctx.invoke("left", "write", value)
        yield ctx.invoke("right", "write", value)
        yield ctx.invoke("tally", "add", 1)
        return value

    def copy_left_to_right(ctx):
        result = yield ctx.invoke("copier", "copy", "left", "right")
        return result

    def read_both(ctx):
        values = yield ctx.parallel(ctx.call("left", "read"), ctx.call("right", "read"))
        return tuple(values)

    base.register_transaction(MethodDefinition("set_both", set_both))
    base.register_transaction(MethodDefinition("copy_left_to_right", copy_left_to_right))
    base.register_transaction(MethodDefinition("read_both", read_both, read_only=True))
    return base


def run_engine(base, specs, scheduler=None, **kwargs):
    engine = SimulationEngine(base, scheduler or Scheduler(), **kwargs)
    engine.submit_all(specs)
    return engine.run()


class TestBasicExecution:
    def test_single_transaction_commits_and_updates_state(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("set_both", (7,))])
        assert result.metrics.committed == 1
        assert result.metrics.aborted_attempts == 0
        finals = result.history.final_states()
        assert finals["left"]["value"] == 7
        assert finals["right"]["value"] == 7
        assert finals["tally"]["count"] == 1

    def test_recorded_history_structure(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("copy_left_to_right")])
        history = result.history
        top_levels = history.top_level_executions()
        assert len(top_levels) == 1
        top = history.execution(top_levels[0])
        assert top.object_name == ENVIRONMENT_OBJECT
        # environment (level 0) -> copier.copy (level 1) -> register methods
        # (level 2): two levels of proper ancestors.
        depths = [history.level(execution_id) for execution_id in history.execution_ids()]
        assert max(depths) == 2
        assert result.metrics.invocations == 3

    def test_return_value_of_nested_call_propagates(self):
        base = two_register_base()
        result = run_engine(
            base,
            [TransactionSpec("set_both", (4,)), TransactionSpec("copy_left_to_right")],
            scheduler=make_scheduler("n2pl"),
        )
        assert result.metrics.committed == 2
        assert result.final_states()["right"]["value"] == 4

    def test_parallel_children_return_values_in_order(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("set_both", (9,)), TransactionSpec("read_both")])
        # The read_both transaction records two parallel message steps whose
        # programme order does not relate them.
        history = result.history
        read_top = [
            execution_id
            for execution_id in history.top_level_executions()
            if history.execution(execution_id).method_name == "read_both"
        ][0]
        messages = history.execution(read_top).message_steps()
        assert len(messages) == 2
        first, second = messages
        assert not history.execution(read_top).program_precedes(first, second)
        assert not history.execution(read_top).program_precedes(second, first)

    def test_submission_validates_method_name(self):
        base = two_register_base()
        engine = SimulationEngine(base, Scheduler())
        with pytest.raises(UnknownMethodError):
            engine.submit("no_such_transaction")

    def test_submit_by_name_and_arguments(self):
        base = two_register_base()
        engine = SimulationEngine(base, Scheduler())
        engine.submit("set_both", 3)
        result = engine.run()
        assert result.metrics.committed == 1
        assert result.history.final_states()["left"]["value"] == 3

    def test_engine_is_single_use(self):
        base = two_register_base()
        engine = SimulationEngine(base, Scheduler())
        engine.submit("set_both", 3)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_unknown_scheduling_policy_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine(two_register_base(), Scheduler(), scheduling="magic")

    def test_round_robin_scheduling_also_completes(self):
        base = two_register_base()
        result = run_engine(
            base,
            [TransactionSpec("set_both", (1,)), TransactionSpec("set_both", (2,))],
            scheduling="round-robin",
        )
        assert result.metrics.committed == 2

    def test_round_robin_starts_with_the_first_frame_and_rotates_fairly(self):
        # Regression: the cursor used to be incremented *before* indexing
        # into the freshly rebuilt candidate list, so frame 0 was
        # systematically skipped on every tick.
        base = two_register_base()
        result = run_engine(
            base,
            [
                TransactionSpec("set_both", (1,)),
                TransactionSpec("set_both", (2,)),
                TransactionSpec("set_both", (3,)),
            ],
            scheduling="round-robin",
            record_trace=True,
        )
        assert result.metrics.committed == 3
        begin_ids = [event.execution_id for event in result.trace.of_kind("begin")]
        first_advanced = next(
            event for event in result.trace if event.kind not in ("begin",)
        )
        # The very first scheduling decision must pick the first submitted
        # transaction (or its subtree), not the second.
        first = begin_ids[0]
        assert first_advanced.execution_id == first or first_advanced.execution_id.startswith(
            first + "."
        )


class TestAbortAndRestart:
    class AbortFirstAttempt(Scheduler):
        """Aborts the very first operation it ever sees, then grants everything."""

        name = "abort-once"

        def __init__(self):
            super().__init__()
            self.aborted_once = False

        def on_operation(self, request):
            if not self.aborted_once:
                self.aborted_once = True
                return SchedulerResponse.abort("synthetic failure")
            return SchedulerResponse.grant()

    def test_aborted_transaction_restarts_and_commits(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("set_both", (5,))], scheduler=self.AbortFirstAttempt())
        assert result.metrics.aborted_attempts == 1
        assert result.metrics.restarts == 1
        assert result.metrics.committed == 1
        assert result.final_states()["left"]["value"] == 5
        # The aborted attempt's executions are excluded from the committed
        # projection but present in the full history.
        assert result.aborted_execution_ids
        committed = result.committed_history()
        assert set(committed.execution_ids()).isdisjoint(result.aborted_execution_ids)

    def test_aborted_effects_are_undone(self):
        base = two_register_base()

        class AbortMidway(Scheduler):
            """Grant the first write, abort the transaction on its second."""

            def __init__(self):
                super().__init__()
                self.granted = 0

            def on_operation(self, request):
                self.granted += 1
                if self.granted == 2:
                    return SchedulerResponse.abort("synthetic failure")
                return SchedulerResponse.grant()

        result = run_engine(base, [TransactionSpec("set_both", (5,))], scheduler=AbortMidway(), max_restarts=0)
        assert result.metrics.committed == 0
        assert result.metrics.gave_up == 1
        # The partially executed write to "left" must not survive in the
        # committed projection.
        committed = result.committed_history()
        assert committed.final_states().get("left", {}).get("value", 0) == 0

    class AlwaysAbort(Scheduler):
        def on_operation(self, request):
            return SchedulerResponse.abort("never succeeds")

    def test_gave_up_after_max_restarts(self):
        base = two_register_base()
        result = run_engine(
            base, [TransactionSpec("set_both", (5,))], scheduler=self.AlwaysAbort(), max_restarts=3
        )
        assert result.metrics.committed == 0
        assert result.metrics.gave_up == 1
        assert result.metrics.aborted_attempts == 4  # initial attempt + 3 restarts
        assert result.metrics.restarts == 3

    class AlwaysBlock(Scheduler):
        def on_operation(self, request):
            return SchedulerResponse.block("never grants")

    def test_starvation_valve_aborts_permanently_blocked_transactions(self):
        base = two_register_base()
        result = run_engine(
            base,
            [TransactionSpec("set_both", (5,))],
            scheduler=self.AlwaysBlock(),
            starvation_limit=10,
            max_restarts=1,
        )
        assert result.metrics.committed == 0
        assert result.metrics.gave_up == 1
        assert result.metrics.aborts_by_reason.get("starvation", 0) >= 1

    def test_commit_veto_counts_as_validation_abort(self):
        base = two_register_base()

        class VetoCommit(Scheduler):
            def on_commit_request(self, info):
                return SchedulerResponse.abort("validation failed: synthetic")

        result = run_engine(
            base, [TransactionSpec("set_both", (5,))], scheduler=VetoCommit(), max_restarts=0
        )
        assert result.metrics.committed == 0
        assert result.metrics.aborts_by_reason.get("validation", 0) == 1


class TestTraceAndMetrics:
    def test_trace_records_lifecycle_events(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("set_both", (2,))], record_trace=True)
        kinds = {event.kind for event in result.trace}
        assert COMMITTED in kinds
        assert ABORTED not in kinds
        assert len(result.trace.of_kind(COMMITTED)) == 1

    def test_trace_disabled_by_default(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("set_both", (2,))])
        assert result.trace is None

    def test_metrics_summary_contains_scheduler_name(self):
        base = two_register_base()
        scheduler = NestedTwoPhaseLocking()
        result = run_engine(base, [TransactionSpec("set_both", (2,))], scheduler=scheduler)
        summary = result.summary()
        assert summary["scheduler"] == "n2pl"
        assert summary["committed"] == 1
        assert 0.0 <= summary["throughput"] <= 1.0

    def test_metrics_derived_quantities(self):
        base = two_register_base()
        result = run_engine(base, [TransactionSpec("set_both", (2,))])
        metrics = result.metrics
        assert metrics.abort_rate == 0.0
        assert metrics.blocked_fraction == 0.0
        assert metrics.wasted_fraction == 0.0
        assert metrics.local_steps == 3
        assert metrics.submitted == 1

    def test_determinism_for_fixed_seed(self):
        base_one = two_register_base()
        base_two = two_register_base()
        specs = [TransactionSpec("set_both", (1,)), TransactionSpec("copy_left_to_right")]
        first = run_engine(base_one, specs, scheduler=make_scheduler("n2pl"), seed=42)
        second = run_engine(base_two, specs, scheduler=make_scheduler("n2pl"), seed=42)
        assert first.metrics.as_dict() == second.metrics.as_dict()
