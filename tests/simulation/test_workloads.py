"""Tests for the workload generators."""

import pytest

from repro.core.errors import WorkloadError
from repro.scheduler import make_scheduler
from repro.simulation import (
    BankingWorkload,
    BTreeWorkload,
    HotspotWorkload,
    MixedWorkload,
    QueueWorkload,
    RandomOperationsWorkload,
    SimulationEngine,
)


def run_workload(workload, scheduler_name="n2pl", seed=0, **scheduler_kwargs):
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name, **scheduler_kwargs), seed=seed)
    engine.submit_all(specs)
    return engine.run()


class TestBankingWorkload:
    def test_builds_expected_objects(self):
        workload = BankingWorkload(accounts=6, branches=2, transactions=10, seed=1)
        base, specs = workload.build()
        names = base.object_names()
        assert sum(1 for name in names if name.startswith("account-")) == 6
        assert sum(1 for name in names if name.startswith("teller-")) == 2
        assert len(specs) == 10

    def test_deterministic_for_fixed_seed(self):
        first = BankingWorkload(transactions=12, seed=9).build_transactions()
        second = BankingWorkload(transactions=12, seed=9).build_transactions()
        assert [(spec.method_name, spec.arguments) for spec in first] == [
            (spec.method_name, spec.arguments) for spec in second
        ]

    def test_transfers_preserve_total_balance(self):
        workload = BankingWorkload(
            accounts=6, transactions=15, transfer_fraction=0.8, payroll_fraction=0.0, seed=4
        )
        result = run_workload(workload)
        assert result.metrics.gave_up == 0
        finals = result.final_states()
        total = sum(
            finals[name]["balance"] for name in finals if name.startswith("account-")
        )
        assert total == pytest.approx(workload.expected_total_balance())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            BankingWorkload(accounts=1)
        with pytest.raises(WorkloadError):
            BankingWorkload(transfer_fraction=0.9, payroll_fraction=0.9)

    def test_hot_fraction_concentrates_accesses(self):
        workload = BankingWorkload(accounts=10, transactions=40, hot_fraction=1.0, seed=2)
        specs = workload.build_transactions()
        transfer_sources = [
            spec.arguments[0] for spec in specs if spec.method_name == "transfer"
        ]
        assert transfer_sources and all(source == "account-000" for source in transfer_sources)


class TestQueueWorkload:
    def test_builds_queues_and_mix(self):
        workload = QueueWorkload(queues=3, producers=5, consumers=4, seed=3)
        base, specs = workload.build()
        assert len([name for name in base.object_names() if name.startswith("queue-")]) == 3
        assert len(specs) == 9
        assert workload.total_items_produced() == 15

    def test_produced_items_are_unique(self):
        workload = QueueWorkload(producers=6, consumers=0, items_per_transaction=4, seed=1)
        specs = workload.build_transactions()
        items = [item for spec in specs for item in spec.arguments[1]]
        assert len(items) == len(set(items))

    def test_conservation_of_items(self):
        workload = QueueWorkload(queues=2, producers=6, consumers=6, initial_depth=5, seed=8)
        result = run_workload(workload, "n2pl-step")
        assert result.metrics.gave_up == 0
        finals = result.final_states()
        remaining = sum(len(finals[name]["items"]) for name in finals if name.startswith("queue-"))
        # items remaining = initial + enqueued - dequeued; dequeues never
        # exceed initial + enqueued, so remaining is bounded accordingly.
        initial = workload.queues * workload.initial_depth
        assert 0 <= remaining <= initial + workload.total_items_produced()

    def test_requires_at_least_one_queue(self):
        with pytest.raises(WorkloadError):
            QueueWorkload(queues=0)


class TestHotspotWorkload:
    def test_contention_knob_validated(self):
        with pytest.raises(WorkloadError):
            HotspotWorkload(hot_probability=1.5)
        with pytest.raises(WorkloadError):
            HotspotWorkload(hot_objects=0)

    def test_high_contention_touches_hot_objects_only(self):
        workload = HotspotWorkload(transactions=10, hot_probability=1.0, hot_objects=2, seed=5)
        specs = workload.build_transactions()
        registers = {name for spec in specs for name in spec.arguments[0]}
        assert registers <= {"hot-0", "hot-1"}

    def test_zero_contention_touches_cold_objects_only(self):
        workload = HotspotWorkload(transactions=10, hot_probability=0.0, seed=5)
        specs = workload.build_transactions()
        registers = {name for spec in specs for name in spec.arguments[0]}
        assert all(name.startswith("cold-") for name in registers)

    def test_runs_under_nto(self):
        workload = HotspotWorkload(transactions=8, hot_probability=0.3, seed=6)
        result = run_workload(workload, "nto")
        assert result.metrics.committed + result.metrics.gave_up == 8


class TestBTreeWorkload:
    def test_builds_index_with_initial_keys(self):
        workload = BTreeWorkload(indexes=2, initial_keys=20, key_space=50, seed=7)
        base, _ = workload.build()
        assert len([name for name in base.object_names() if name.startswith("index-")]) == 2

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            BTreeWorkload(read_fraction=0.9, scan_fraction=0.5)
        with pytest.raises(WorkloadError):
            BTreeWorkload(initial_keys=100, key_space=10)

    def test_runs_and_commits_under_n2pl(self):
        workload = BTreeWorkload(transactions=10, seed=2)
        result = run_workload(workload)
        assert result.metrics.committed == 10


class TestMixedWorkload:
    def test_builds_heterogeneous_objects(self):
        workload = MixedWorkload(customers=4, transactions=8, seed=3)
        base, specs = workload.build()
        names = base.object_names()
        assert "catalogue" in names and "shipping-queue" in names and "audit-log" in names
        assert len(specs) == 8

    def test_strategy_map_covers_all_stateful_objects(self):
        workload = MixedWorkload(customers=3, seed=1)
        strategies = workload.modular_strategy_map()
        assert strategies["catalogue"] == "btree-key-locking"
        assert all(
            strategies[f"customer-{index:03d}"] == "locking" for index in range(3)
        )

    def test_runs_under_modular_scheduler(self):
        workload = MixedWorkload(customers=4, transactions=10, seed=5)
        result = run_workload(
            workload, "modular", per_object_strategy=workload.modular_strategy_map()
        )
        assert result.metrics.committed + result.metrics.gave_up == 10

    def test_mix_fraction_validation(self):
        with pytest.raises(WorkloadError):
            MixedWorkload(order_fraction=0.8, restock_fraction=0.5)


class TestRandomOperationsWorkload:
    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            RandomOperationsWorkload(nesting_depth=0)
        with pytest.raises(WorkloadError):
            RandomOperationsWorkload(parallel_fanout=0)
        with pytest.raises(WorkloadError):
            RandomOperationsWorkload(write_fraction=2.0)

    def test_nesting_depth_materialises_in_history(self):
        workload = RandomOperationsWorkload(transactions=3, nesting_depth=3, seed=4)
        result = run_workload(workload)
        depths = [
            result.history.level(execution_id) for execution_id in result.history.execution_ids()
        ]
        assert max(depths) == 3

    def test_parallel_fanout_creates_unordered_siblings(self):
        workload = RandomOperationsWorkload(
            transactions=2, parallel_fanout=2, operations_per_transaction=4, seed=4
        )
        result = run_workload(workload)
        history = result.history
        has_parallel_pair = False
        for top in history.top_level_executions():
            messages = history.execution(top).message_steps()
            if len(messages) >= 2 and not history.execution(top).program_precedes(
                messages[0], messages[1]
            ):
                has_parallel_pair = True
        assert has_parallel_pair

    def test_deterministic_for_fixed_seed(self):
        first = RandomOperationsWorkload(transactions=5, seed=11).build_transactions()
        second = RandomOperationsWorkload(transactions=5, seed=11).build_transactions()
        assert [spec.arguments for spec in first] == [spec.arguments for spec in second]
