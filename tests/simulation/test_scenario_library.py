"""The E19 scenario library: skewed keys, load curves, multi-ADT pipelines.

Covers the new arrival processes (diurnal, flash-crowd), the zipfian
register workload and the order-processing pipeline — construction
validation, determinism at a fixed seed, and end-to-end runs that stay
serialisable with conserved money.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis import certify_run
from repro.core.errors import WorkloadError
from repro.scheduler import make_scheduler
from repro.simulation import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    OrderProcessingWorkload,
    SimulationEngine,
    ZipfianWorkload,
    make_arrival_process,
    make_workload,
)


class TestNewArrivals:
    def test_registered(self):
        assert isinstance(make_arrival_process("diurnal"), DiurnalArrivals)
        assert isinstance(make_arrival_process("flash-crowd"), FlashCrowdArrivals)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0},
            {"rate": -0.1},
            {"amplitude": 1.0},
            {"amplitude": -0.2},
            {"period": 1},
        ],
    )
    def test_diurnal_validation(self, kwargs):
        with pytest.raises(ValueError):
            DiurnalArrivals(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": 0},
            {"spike_factor": 1.0},
            {"spike_length": 0},
            {"mean_calm": 0},
        ],
    )
    def test_flash_crowd_validation(self, kwargs):
        with pytest.raises(ValueError):
            FlashCrowdArrivals(**kwargs)

    @pytest.mark.parametrize(
        "spec",
        [
            {"name": "diurnal", "rate": 0.05, "amplitude": 0.8, "period": 200},
            {
                "name": "flash-crowd",
                "rate": 0.02,
                "spike_factor": 6.0,
                "spike_length": 30,
                "mean_calm": 150,
            },
        ],
    )
    def test_schedules_deterministic_and_monotone(self, spec):
        first = make_arrival_process(spec)
        first.bind(42)
        ticks = first.schedule(300)
        assert len(ticks) == 300
        assert all(b >= a for a, b in zip(ticks, ticks[1:]))
        assert all(tick >= 0 for tick in ticks)
        second = make_arrival_process(spec)
        second.bind(42)
        assert second.schedule(300) == ticks

    def test_diurnal_modulates_density(self):
        # With a strong amplitude the dense half-period must hold more
        # arrivals than the sparse one — the curve actually curves.
        process = DiurnalArrivals(rate=0.05, amplitude=0.9, period=400)
        process.bind(7)
        ticks = process.schedule(400)
        phase = Counter((tick % 400) < 200 for tick in ticks)
        assert phase[True] > phase[False]

    def test_flash_crowd_spikes_are_denser_than_calm(self):
        process = FlashCrowdArrivals(
            rate=0.01, spike_factor=10.0, spike_length=50, mean_calm=300
        )
        process.bind(11)
        ticks = process.schedule(400)
        gaps = sorted(b - a for a, b in zip(ticks, ticks[1:]))
        # A heavy spike factor forces a clearly bimodal gap distribution.
        assert gaps[len(gaps) // 4] < gaps[-len(gaps) // 4]


class TestZipfianWorkload:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianWorkload(objects=0)
        with pytest.raises(WorkloadError):
            ZipfianWorkload(skew=-0.5)
        with pytest.raises(WorkloadError):
            ZipfianWorkload(transactions=0)

    def test_skew_concentrates_on_low_ranks(self):
        workload = ZipfianWorkload(
            transactions=200, objects=32, operations_per_transaction=2,
            skew=1.4, seed=5,
        )
        _, specs = workload.build()
        touches = Counter()
        for spec in specs:
            for object_name in spec.arguments[0]:
                touches[object_name] += 1
        hottest = touches.most_common(1)[0]
        assert hottest[0] == "key-000"
        assert hottest[1] > sum(touches.values()) / len(touches) * 3

    def test_runs_serialisable_under_every_fixed_strategy(self):
        workload = ZipfianWorkload(transactions=30, objects=16, skew=1.2, seed=9)
        for scheduler_name in ("modular", "adaptive"):
            base, specs = workload.build()
            engine = SimulationEngine(
                base, make_scheduler(scheduler_name, restart_policy="backoff"), seed=3
            )
            engine.submit_all(specs)
            result = engine.run()
            assert result.metrics.committed + result.metrics.gave_up == 30
            assert certify_run(result, check_legality=True).serialisable

    def test_builds_are_deterministic(self):
        def transactions():
            _, specs = ZipfianWorkload(transactions=50, seed=13).build()
            return [(s.label, s.method_name, s.arguments) for s in specs]

        assert transactions() == transactions()


class TestOrderProcessingWorkload:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            OrderProcessingWorkload(customers=0)
        with pytest.raises(WorkloadError):
            OrderProcessingWorkload(order_fraction=0.8, fulfil_fraction=0.3)
        with pytest.raises(WorkloadError):
            OrderProcessingWorkload(initial_stock=-1)

    def test_composes_three_adts(self):
        base, specs = OrderProcessingWorkload(transactions=20, seed=2).build()
        names = set(base.object_names())
        assert "inventory" in names
        assert "fulfilment-queue" in names
        assert "merchant" in names
        assert any(name.startswith("customer-") for name in names)
        kinds = {spec.label.split("-")[0] for spec in specs}
        assert kinds <= {"order", "fulfil", "restock", "audit"}

    def test_money_is_conserved_end_to_end(self):
        workload = OrderProcessingWorkload(
            customers=6, items=12, transactions=25, seed=17
        )
        base, specs = workload.build()
        opening = sum(
            dict(state).get("balance", 0)
            for name, state in base.initial_states().items()
            if name == "merchant" or name.startswith("customer-")
        )
        engine = SimulationEngine(
            base, make_scheduler("adaptive", restart_policy="backoff"), seed=23
        )
        engine.submit_all(specs)
        result = engine.run()
        assert result.metrics.gave_up == 0
        finals = result.final_states()
        closing = sum(
            dict(state).get("balance", 0)
            for name, state in finals.items()
            if name == "merchant" or name.startswith("customer-")
        )
        # Withdrawals only move money to the merchant via the fulfilment
        # queue; whatever is still queued is money in flight, so closing
        # customer+merchant balances can only have shrunk by the queued
        # amount, never grown.
        assert closing <= opening
        report = certify_run(result, check_legality=True)
        assert report.serialisable
        assert report.legal

    def test_stream_wrapper_registered(self):
        streaming = make_workload(
            "order-processing-stream",
            inner_params={"transactions": 5, "seed": 1},
            arrival="diurnal",
            arrival_params={"rate": 0.05},
        )
        base, specs = streaming.build()
        assert len(specs) == 5
        assert streaming.arrival_process().name == "diurnal"

    def test_zipf_stream_wrapper_registered(self):
        streaming = make_workload(
            "zipf-stream",
            inner_params={"transactions": 4, "seed": 1},
            arrival="flash-crowd",
            arrival_params={"rate": 0.05},
        )
        _, specs = streaming.build()
        assert len(specs) == 4
