"""Event-driven scheduling: parked frames, wake-ups, and no busy-waiting.

The acceptance property of the event-driven core: a frame whose operation
was BLOCKed is parked and never re-issues its request until a wake-up
fires — operationally, a run's trace never shows two consecutive BLOCKED
events for the same frame without an intervening WOKEN event.
"""

from __future__ import annotations

from repro.scheduler import NestedTwoPhaseLocking, make_scheduler
from repro.simulation import HotspotWorkload, MixedWorkload, SimulationEngine
from repro.simulation.events import BLOCKED, WOKEN

from tests.scheduler.conftest import child_of, info, request
from repro.objectbase.adts.register import WriteRegister


def run_workload(workload, scheduler_name, *, seed=0, **engine_kwargs):
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name), seed=seed, **engine_kwargs)
    engine.submit_all(specs)
    return engine.run()


def contended_workload():
    """An E3-style contended hot-spot workload (many waiters per object)."""
    return HotspotWorkload(
        transactions=16,
        hot_objects=2,
        cold_objects=24,
        operations_per_transaction=3,
        hot_probability=0.9,
        seed=303,
    )


class TestNoBusyWait:
    def assert_no_consecutive_blocked(self, trace):
        last_was_blocked: dict[str, bool] = {}
        for event in trace:
            if event.kind == BLOCKED:
                assert not last_was_blocked.get(event.execution_id, False), (
                    f"frame {event.execution_id} re-issued a BLOCKed request at tick "
                    f"{event.tick} without an intervening wake-up"
                )
                last_was_blocked[event.execution_id] = True
            elif event.kind == WOKEN:
                last_was_blocked[event.execution_id] = False

    def test_n2pl_never_reissues_blocked_requests_without_wakeup(self):
        result = run_workload(contended_workload(), "n2pl", record_trace=True)
        metrics = result.metrics
        assert metrics.parks > 0, "the contended workload must actually block"
        self.assert_no_consecutive_blocked(result.trace)
        # Every park was resolved by an event, never by the stall fallback.
        assert metrics.forced_wakes == 0
        assert metrics.committed + metrics.gave_up == metrics.submitted

    def test_single_active_never_reissues_blocked_requests_without_wakeup(self):
        result = run_workload(
            MixedWorkload(transactions=10, seed=21), "single-active", record_trace=True
        )
        assert result.metrics.parks > 0
        self.assert_no_consecutive_blocked(result.trace)
        assert result.metrics.forced_wakes == 0

    def test_modular_never_reissues_blocked_requests_without_wakeup(self):
        result = run_workload(
            MixedWorkload(transactions=10, seed=22), "modular", record_trace=True
        )
        self.assert_no_consecutive_blocked(result.trace)
        assert result.metrics.forced_wakes == 0

    def test_park_and_wake_counters_are_consistent(self):
        result = run_workload(contended_workload(), "n2pl", record_trace=True)
        metrics = result.metrics
        # A park ends in a wake-up or in the frame's discard at abort; it is
        # never lost.
        assert metrics.wakes <= metrics.parks
        assert len(result.trace.of_kind(WOKEN)) == metrics.wakes
        assert metrics.wait_ticks >= metrics.blocked_ticks
        # NTO on the same workload never blocks an operation: contention
        # shows up as restarts, not waiting.
        nto = run_workload(contended_workload(), "nto")
        assert nto.metrics.blocked_ticks == 0
        assert nto.metrics.forced_wakes == 0


class TestRule5InheritanceWakeups:
    """Parked waiters are re-awakened when a blocker's locks are inherited."""

    def test_sibling_waiter_wakes_when_blocker_transfers_to_common_parent(self):
        # Two parallel siblings of one transaction write the same register:
        # the loser parks behind the winner, and must be woken — and then
        # granted — when the winner completes and its lock is inherited by
        # the common parent (an ancestor of the waiter), rule 5.
        from repro.objectbase import MethodDefinition, ObjectBase
        from repro.objectbase.adts import register_definition
        from repro.simulation import TransactionSpec

        base = ObjectBase()
        base.register(register_definition("cell", 0))

        def double_write(ctx, value):
            results = yield ctx.parallel(
                ctx.call("cell", "write", value),
                ctx.call("cell", "write", value + 1),
            )
            return results

        base.register_transaction(MethodDefinition("double_write", double_write))

        engine = SimulationEngine(
            base,
            make_scheduler("n2pl"),
            scheduling="round-robin",
            record_trace=True,
        )
        engine.submit(TransactionSpec("double_write", (7,)))
        result = engine.run()

        assert result.metrics.committed == 1
        assert result.metrics.aborted_attempts == 0, (
            "sibling contention inside one transaction must resolve by lock "
            "inheritance, not by deadlock"
        )
        assert result.metrics.parks >= 1
        assert result.metrics.wakes >= 1
        assert result.metrics.forced_wakes == 0
        woken = result.trace.of_kind(WOKEN)
        assert woken, "the parked sibling must be explicitly re-awakened"

    def test_n2pl_notes_wakeups_for_transfer_and_release(self):
        # Drive the scheduler directly: the freed owner ids surfaced by
        # LockManager.transfer / release_all must reach drain_wakeups().
        scheduler = NestedTwoPhaseLocking()
        from repro.objectbase import ObjectBase
        from repro.objectbase.adts import register_definition

        base = ObjectBase()
        base.register(register_definition("A", 0))
        scheduler.attach(base)

        top = info("T1")
        blocker_child = child_of(top, "T1.1", "A")
        scheduler.on_transaction_begin(top)
        scheduler.on_invoke(top, blocker_child)
        granted = scheduler.on_operation(request(blocker_child, "A", WriteRegister(1)))
        assert granted.granted

        other = info("T2")
        scheduler.on_transaction_begin(other)
        blocked = scheduler.on_operation(request(other, "A", WriteRegister(2)))
        assert blocked.blocked
        assert "T1.1" in blocked.blockers

        # Rule 5: completing the child transfers its locks to the parent and
        # must produce a wake-up for the child's id — the key the waiter is
        # parked on.
        scheduler.on_execution_complete(blocker_child)
        assert "T1.1" in scheduler.drain_wakeups()
        assert scheduler.drain_wakeups() == frozenset()  # drained exactly once

        # Commit releases the inherited locks.  Transaction-end wake-ups are
        # the engine's job (it always wakes frames parked on an ending
        # transaction), so the scheduler adds no note of its own — only
        # rule-5 transfers carry scheduler-side wake information.
        scheduler.on_transaction_commit(top)
        assert scheduler.drain_wakeups() == frozenset()
        assert scheduler.on_operation(request(other, "A", WriteRegister(2))).granted
