"""Fault injection: deterministic crashes exercising undo + recovery.

An injected crash is an engine-initiated abort of an in-flight top-level
transaction.  The tests pin the contract: faults land exactly where the
plan says, victims recover through the ordinary undo/restart machinery
(verified against full replay via ``check_undo=True``), the committed
projection stays serialisable, and a faulted run is still a pure
function of its seeds.
"""

from __future__ import annotations

import pytest

from repro.analysis import certify_run
from repro.scheduler import make_scheduler
from repro.simulation import (
    FAULT_REGISTRY,
    CrashPlan,
    FaultPlan,
    HotspotWorkload,
    SimulationEngine,
    fault_plan_names,
    make_fault_plan,
)
from repro.simulation.events import FAULT_INJECTED


def run_with_faults(fault_plan, scheduler="n2pl", seed=7, record_trace=False, **engine_kwargs):
    workload = HotspotWorkload(
        transactions=24,
        hot_objects=2,
        cold_objects=8,
        operations_per_transaction=4,
        hot_probability=0.6,
        use_service_layer=False,
        seed=seed,
    )
    base, specs = workload.build()
    engine = SimulationEngine(
        base,
        make_scheduler(scheduler, restart_policy="backoff"),
        seed=seed,
        fault_plan=fault_plan,
        record_trace=record_trace,
        **engine_kwargs,
    )
    engine.submit_all(specs)
    return engine.run()


class TestMakeFaultPlan:
    def test_by_name(self):
        plan = make_fault_plan("crash", at=(100,))
        assert isinstance(plan, CrashPlan)
        assert plan.at == (100,)

    def test_by_mapping(self):
        plan = make_fault_plan({"name": "crash", "period": 50, "victim": "newest"})
        assert plan.period == 50
        assert plan.victim == "newest"

    def test_instance_passthrough(self):
        plan = CrashPlan(at=(10,))
        assert make_fault_plan(plan) is plan

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            make_fault_plan("meteor")

    def test_names_cover_registry(self):
        assert fault_plan_names() == sorted(FAULT_REGISTRY)


class TestCrashPlanValidation:
    def test_negative_ticks(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            CrashPlan(at=(-5,))

    def test_bad_period(self):
        with pytest.raises(ValueError, match="period must be >= 1"):
            CrashPlan(period=0)

    def test_unknown_victim_policy(self):
        with pytest.raises(ValueError, match="unknown victim policy"):
            CrashPlan(victim="unluckiest")

    def test_bad_max_faults(self):
        with pytest.raises(ValueError, match="max_faults must be >= 1"):
            CrashPlan(max_faults=0)

    def test_bind_resets_state(self):
        plan = CrashPlan(period=10, max_faults=1)
        plan.choose_victim(["T1"])
        assert plan.next_after(0) is None
        plan.bind(3)
        assert plan.next_after(0) == 10


class TestInjection:
    def test_faults_land_and_victims_recover(self):
        # check_undo=True re-derives every object state by full replay
        # after each abort — including the injected ones — and raises on
        # any divergence, so a green run certifies the recovery path.
        result = run_with_faults(
            CrashPlan(at=(40, 90), period=150), check_undo=True
        )
        assert result.metrics.faults_injected > 0
        assert result.metrics.aborts_by_reason.get("fault", 0) == (
            result.metrics.faults_injected
        )
        assert result.metrics.committed + result.metrics.gave_up == 24
        assert certify_run(result, check_legality=True).serialisable

    def test_fault_events_are_traced(self):
        result = run_with_faults(CrashPlan(at=(40,), period=200), record_trace=True)
        injected = [
            event for event in result.trace.events if event.kind == FAULT_INJECTED
        ]
        assert len(injected) == result.metrics.faults_injected
        assert all("crash injected at tick" in event.detail for event in injected)

    def test_max_faults_caps_injection(self):
        result = run_with_faults(CrashPlan(period=60, max_faults=2))
        assert 0 < result.metrics.faults_injected <= 2

    @pytest.mark.parametrize("victim", ("oldest", "newest", "random"))
    def test_victim_policies_complete(self, victim):
        result = run_with_faults(CrashPlan(period=100, victim=victim, max_faults=3))
        assert result.metrics.committed + result.metrics.gave_up == 24

    def test_no_plan_means_no_faults(self):
        result = run_with_faults(None)
        assert result.metrics.faults_injected == 0
        assert "fault" not in result.metrics.aborts_by_reason

    def test_adaptive_scheduler_survives_faults(self):
        result = run_with_faults(
            CrashPlan(period=80, max_faults=3),
            scheduler="adaptive",
            check_undo=True,
        )
        assert result.metrics.committed + result.metrics.gave_up == 24
        report = certify_run(result, check_legality=True)
        assert report.serialisable
        assert report.legal


class TestDeterminism:
    @pytest.mark.parametrize("victim", ("oldest", "random"))
    def test_faulted_runs_are_bit_identical(self, victim):
        def outcome():
            result = run_with_faults(
                CrashPlan(period=70, victim=victim, max_faults=4)
            )
            return (
                result.metrics.as_dict(),
                tuple(result.committed_transaction_ids),
                {n: dict(s) for n, s in result.final_states().items()},
            )

        assert outcome() == outcome()

    def test_engine_params_accepts_plan_mappings(self):
        # The JSON shape a sweep spec carries must resolve identically to
        # a ready instance.
        by_mapping = run_with_faults({"name": "crash", "period": 70, "max_faults": 2})
        by_instance = run_with_faults(CrashPlan(period=70, max_faults=2))
        assert by_mapping.metrics.as_dict() == by_instance.metrics.as_dict()
