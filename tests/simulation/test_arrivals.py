"""Arrival processes: determinism, registry shapes, schedule validity."""

import pytest

from repro.simulation.arrivals import (
    ARRIVAL_REGISTRY,
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    arrival_process_names,
    make_arrival_process,
)


class TestMakeArrivalProcess:
    def test_by_name(self):
        process = make_arrival_process("poisson")
        assert isinstance(process, PoissonArrivals)

    def test_by_name_with_kwargs(self):
        process = make_arrival_process("poisson", rate=0.5)
        assert process.rate == 0.5

    def test_by_mapping(self):
        process = make_arrival_process({"name": "bursty", "burst": 4, "mean_gap": 10})
        assert isinstance(process, BurstyArrivals)
        assert process.burst == 4

    def test_instance_passthrough(self):
        process = PoissonArrivals(rate=0.25)
        assert make_arrival_process(process) is process

    def test_instance_rejects_kwargs(self):
        with pytest.raises(TypeError):
            make_arrival_process(PoissonArrivals(), rate=0.5)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown arrival process"):
            make_arrival_process("nope")

    def test_mapping_without_name(self):
        with pytest.raises(TypeError, match="needs a 'name' entry"):
            make_arrival_process({"rate": 0.5})

    def test_unknown_keyword(self):
        with pytest.raises(TypeError):
            make_arrival_process("poisson", bogus=1)

    def test_names_cover_registry(self):
        assert arrival_process_names() == sorted(ARRIVAL_REGISTRY)


class TestValidation:
    @pytest.mark.parametrize("rate", [0, -0.5])
    def test_poisson_rejects_nonpositive_rate(self, rate):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=rate)

    def test_bursty_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BurstyArrivals(burst=0)
        with pytest.raises(ValueError):
            BurstyArrivals(mean_gap=0)
        with pytest.raises(ValueError):
            BurstyArrivals(within_gap=-1)


class TestSchedules:
    def test_schedule_is_non_decreasing_and_deterministic(self):
        for spec in ("poisson", {"name": "bursty", "burst": 3, "mean_gap": 20}):
            first = make_arrival_process(spec)
            first.bind(42)
            ticks = first.schedule(200)
            assert len(ticks) == 200
            assert all(b >= a for a, b in zip(ticks, ticks[1:]))
            assert all(tick >= 0 for tick in ticks)
            second = make_arrival_process(spec)
            second.bind(42)
            assert second.schedule(200) == ticks

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate=0.1)
        a.bind(1)
        b = PoissonArrivals(rate=0.1)
        b.bind(2)
        assert a.schedule(100) != b.schedule(100)

    def test_explicit_seed_wins_over_bind(self):
        a = PoissonArrivals(rate=0.1, seed=7)
        a.bind(1)
        b = PoissonArrivals(rate=0.1, seed=7)
        b.bind(2)
        assert a.schedule(100) == b.schedule(100)

    def test_poisson_rate_is_respected(self):
        process = PoissonArrivals(rate=0.1)
        process.bind(0)
        ticks = process.schedule(2000)
        mean_gap = ticks[-1] / len(ticks)
        assert 8.0 < mean_gap < 12.0  # nominal 10 ticks between arrivals

    def test_bursty_shape(self):
        process = BurstyArrivals(burst=5, mean_gap=100, within_gap=0)
        process.bind(0)
        ticks = process.schedule(25)
        bursts = [ticks[i : i + 5] for i in range(0, 25, 5)]
        for burst in bursts:
            assert len(set(burst)) == 1  # back-to-back within a burst
        starts = [burst[0] for burst in bursts]
        assert all(b > a for a, b in zip(starts, starts[1:]))

    def test_negative_gap_is_rejected(self):
        class Broken(ArrivalProcess):
            def interarrival(self, index):
                return -1

        with pytest.raises(ValueError, match="negative gap"):
            Broken().schedule(1)
