"""Incremental undo: per-transaction undo segments vs full-history replay.

The abort path no longer replays the whole run; it rolls every touched
object back to the snapshot taken before the aborted subtree's first step
and re-applies the surviving suffix.  These tests pin the equivalence:
``check_undo=True`` makes the engine compare the incremental result with a
full replay after *every* abort and raise on any divergence, and the
``undo="replay"`` strategy must produce byte-identical runs.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.core.operations import LocalStep
from repro.core.state import ObjectState, UndoLog
from repro.objectbase.adts.register import WriteRegister
from repro.scheduler import Scheduler, make_scheduler
from repro.scheduler.base import SchedulerResponse
from repro.simulation import (
    BankingWorkload,
    HotspotWorkload,
    QueueWorkload,
    SimulationEngine,
)

ABORT_HEAVY = [
    ("nto", lambda: HotspotWorkload(
        transactions=12, hot_objects=2, cold_objects=6,
        operations_per_transaction=3, hot_probability=0.8, seed=41,
    )),
    ("n2pl", lambda: HotspotWorkload(
        transactions=12, hot_objects=2, cold_objects=6,
        operations_per_transaction=3, hot_probability=0.9, seed=42,
    )),
    ("certifier", lambda: HotspotWorkload(
        transactions=10, hot_objects=2, cold_objects=6,
        operations_per_transaction=3, hot_probability=0.8, seed=43,
    )),
    ("nto-step", lambda: QueueWorkload(
        queues=2, producers=6, consumers=6, initial_depth=4, seed=44,
    )),
    ("modular", lambda: BankingWorkload(accounts=4, transactions=10, seed=45)),
]


def run_engine(workload, scheduler_name, **kwargs):
    base, specs = workload.build()
    engine = SimulationEngine(base, make_scheduler(scheduler_name), seed=7, **kwargs)
    engine.submit_all(specs)
    return engine.run()


class TestIncrementalUndoEquivalence:
    @pytest.mark.parametrize("scheduler_name,make_workload", ABORT_HEAVY)
    def test_incremental_undo_matches_full_replay_on_every_abort(
        self, scheduler_name, make_workload
    ):
        # check_undo=True re-derives every object state by full replay after
        # each abort and raises SimulationError on the slightest divergence.
        result = run_engine(make_workload(), scheduler_name, check_undo=True)
        assert result.metrics.aborted_attempts > 0, (
            f"{scheduler_name}: the workload must actually abort for the "
            "equivalence check to mean anything"
        )
        assert result.metrics.committed + result.metrics.gave_up == result.metrics.submitted

    @pytest.mark.parametrize("scheduler_name,make_workload", ABORT_HEAVY)
    def test_replay_strategy_produces_identical_runs(self, scheduler_name, make_workload):
        # The undo strategy must not influence scheduling decisions: the
        # same seed under either strategy yields the same run.
        incremental = run_engine(make_workload(), scheduler_name, undo="incremental")
        replay = run_engine(make_workload(), scheduler_name, undo="replay")
        assert incremental.metrics.as_dict() == replay.metrics.as_dict()
        assert incremental.final_states() == replay.final_states()

    def test_unknown_undo_strategy_rejected(self):
        workload = BankingWorkload(accounts=4, transactions=2, seed=1)
        base, _ = workload.build()
        with pytest.raises(SimulationError):
            SimulationEngine(base, make_scheduler("n2pl"), undo="magic")

    def test_committed_state_preserved_across_interleaved_abort(self):
        # A committed write that lands *after* the aborted transaction's
        # first step on the same object must survive the rollback: the
        # surviving suffix is re-applied on top of the snapshot.
        from repro.objectbase import MethodDefinition, ObjectBase
        from repro.simulation import TransactionSpec

        base = ObjectBase()
        from repro.objectbase.adts import register_definition

        base.register(register_definition("cell", 0))

        def write_cell(ctx, value):
            yield ctx.invoke("cell", "write", value)
            yield ctx.invoke("cell", "write", value + 1)
            return value

        base.register_transaction(MethodDefinition("write_cell", write_cell))

        class AbortSecondTransactionLate(Scheduler):
            """Grant everything, but veto the second transaction's commit."""

            def on_commit_request(self, info):
                if info.execution_id == "T2":
                    return SchedulerResponse.abort("validation failed: synthetic")
                return SchedulerResponse.grant()

        engine = SimulationEngine(
            base,
            AbortSecondTransactionLate(),
            scheduling="round-robin",
            max_restarts=0,
            check_undo=True,
        )
        engine.submit(TransactionSpec("write_cell", (10,)))
        engine.submit(TransactionSpec("write_cell", (20,)))
        result = engine.run()
        assert result.metrics.committed == 1
        assert result.metrics.gave_up == 1
        assert result.final_states()["cell"]["value"] == 11


class TestUndoLogUnit:
    def apply(self, log, object_name, execution_id, top_level_id, operation, states):
        pre = states.get(object_name, ObjectState())
        _, states[object_name] = operation.apply(pre)
        log.record(object_name, execution_id, top_level_id, operation, pre)

    def test_undo_removes_only_subtree_steps_and_repairs_state(self):
        log = UndoLog()
        states = {"A": ObjectState({"value": 0})}
        self.apply(log, "A", "T1.1", "T1", WriteRegister(1), states)
        self.apply(log, "A", "T2.1", "T2", WriteRegister(2), states)
        self.apply(log, "A", "T1.2", "T1", WriteRegister(3), states)
        assert states["A"]["value"] == 3

        removed = log.undo("T1", {"T1", "T1.1", "T1.2"}, states)
        assert removed == 2
        # T2's surviving write is re-applied on the pre-T1 snapshot.
        assert states["A"]["value"] == 2
        assert [entry.execution_id for entry in log.steps_on("A")] == ["T2.1"]

    def test_snapshots_are_refreshed_for_reapplied_survivors(self):
        # After one undo the survivors' snapshots must be consistent, so a
        # second undo (of the survivor itself) still lands on the right state.
        log = UndoLog()
        states = {"A": ObjectState({"value": 0})}
        self.apply(log, "A", "T1.1", "T1", WriteRegister(1), states)
        self.apply(log, "A", "T2.1", "T2", WriteRegister(2), states)
        log.undo("T1", {"T1", "T1.1"}, states)
        assert states["A"]["value"] == 2
        log.undo("T2", {"T2", "T2.1"}, states)
        assert states["A"]["value"] == 0
        assert log.steps_on("A") == []
        assert log.total_steps() == 0

    def test_untouched_objects_are_left_alone(self):
        log = UndoLog()
        states = {"A": ObjectState({"value": 0}), "B": ObjectState({"value": 9})}
        self.apply(log, "A", "T1.1", "T1", WriteRegister(5), states)
        log.undo("T1", {"T1", "T1.1"}, states)
        assert states["A"]["value"] == 0
        assert states["B"]["value"] == 9

    def test_undo_of_unknown_transaction_is_a_noop(self):
        log = UndoLog()
        states = {"A": ObjectState({"value": 0})}
        self.apply(log, "A", "T1.1", "T1", WriteRegister(5), states)
        assert log.undo("T9", {"T9"}, states) == 0
        assert states["A"]["value"] == 5

    def test_step_level_values_survive_reapplication(self):
        # Operations whose return values depend on the state (a queue's
        # dequeue) still re-apply deterministically.
        from repro.objectbase.adts.fifo_queue import Dequeue, Enqueue

        log = UndoLog()
        states = {"Q": ObjectState({"items": ("seed",)})}
        self.apply(log, "Q", "T1.1", "T1", Enqueue("x"), states)
        self.apply(log, "Q", "T2.1", "T2", Dequeue(), states)
        log.undo("T1", {"T1", "T1.1"}, states)
        # The dequeue re-applies against the rolled-back queue: "seed" is
        # still the item removed, and T1's enqueue is gone.
        assert tuple(states["Q"]["items"]) == ()
