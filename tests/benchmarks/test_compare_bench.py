"""Edge cases of the benchmark-regression gate (``benchmarks.compare_bench``).

The gate fails CI on pull requests now, so its failure modes matter as
much as its happy path: a missing or unreadable baseline must *skip*
(never crash, never false-alarm), zero/NaN baselines must not divide or
compare, and an empty comparison must never print the all-clear.
"""

import json

import pytest

from benchmarks.compare_bench import THRESHOLD, Watch, compare, main, report


def make_watch(tmp_path, rows, name="T1", missing=False):
    path = tmp_path / "BENCH_test.json"
    if not missing:
        path.write_text(json.dumps({"experiment": "test", "rows": rows}))
    return Watch(name=name, path=path, key_fields=("config",), columns=("ratio",))


def row(config, ratio):
    return {"config": config, "ratio": ratio}


class TestCompare:
    def test_missing_baseline_file_skips(self, tmp_path):
        watch = make_watch(tmp_path, [], missing=True)
        notices, warnings, compared = compare(watch)
        assert notices and "nothing to compare" in notices[0]
        assert warnings == []
        assert compared == 0

    def test_unreadable_file_skips(self, tmp_path):
        watch = make_watch(tmp_path, [])
        watch.path.write_text("{not json")
        notices, warnings, compared = compare(watch)
        assert notices and "unreadable" in notices[0]
        assert compared == 0

    def test_single_sweep_is_baseline_only(self, tmp_path):
        watch = make_watch(tmp_path, [row("a", 2.0)])
        notices, warnings, compared = compare(watch)
        assert (notices, warnings, compared) == ([], [], 0)

    def test_zero_baseline_value_is_not_compared(self, tmp_path):
        # A zero (or negative) baseline cannot express a ratio drop; it
        # must be skipped, not divided by.
        watch = make_watch(tmp_path, [row("a", 0.0), row("a", 0.0)])
        notices, warnings, compared = compare(watch)
        assert warnings == []
        assert compared == 0

    def test_nan_baseline_value_is_not_compared(self, tmp_path):
        watch = make_watch(tmp_path, [row("a", float("nan")), row("a", 2.0)])
        notices, warnings, compared = compare(watch)
        # NaN comparisons are all false, so the config silently fails both
        # guards; it must count as not-compared rather than as a pass.
        assert warnings == []
        assert compared == 0

    def test_non_numeric_value_is_not_compared(self, tmp_path):
        watch = make_watch(tmp_path, [row("a", "fast"), row("a", 2.0)])
        assert compare(watch) == ([], [], 0)

    def test_boolean_value_is_not_compared(self, tmp_path):
        # bool is an int subclass; a True baseline must not masquerade as
        # a 1.0x ratio.
        watch = make_watch(tmp_path, [row("a", True), row("a", True)])
        assert compare(watch) == ([], [], 0)

    def test_regression_detected(self, tmp_path):
        watch = make_watch(tmp_path, [row("a", 2.0), row("a", 1.0)])
        notices, warnings, compared = compare(watch)
        assert compared == 1
        assert len(warnings) == 1
        assert "2.00x -> 1.00x" in warnings[0]

    def test_within_threshold_is_clean(self, tmp_path):
        watch = make_watch(tmp_path, [row("a", 2.0), row("a", 1.8)])
        notices, warnings, compared = compare(watch)
        assert warnings == []
        assert compared == 1

    def test_zero_latest_value_warns(self, tmp_path):
        # A collapsed fresh value (0.0) is the worst regression there is;
        # the epsilon floor keeps the division finite.
        watch = make_watch(tmp_path, [row("a", 2.0), row("a", 0.0)])
        _, warnings, compared = compare(watch)
        assert compared == 1
        assert len(warnings) == 1

    def test_noise_floor_skips_tiny_measurements(self, tmp_path):
        # A regression built on a sub-floor baseline measurement is
        # jitter, not signal: the config must count as not-compared.
        rows = [
            {"config": "a", "ratio": 5.0, "base_seconds": 0.0002},
            {"config": "a", "ratio": 1.0, "base_seconds": 0.0002},
            {"config": "b", "ratio": 5.0, "base_seconds": 1.5},
            {"config": "b", "ratio": 1.0, "base_seconds": 1.4},
        ]
        watch = make_watch(tmp_path, rows)
        watch = Watch(
            name=watch.name,
            path=watch.path,
            key_fields=watch.key_fields,
            columns=watch.columns,
            noise_floor=("base_seconds", 0.05),
        )
        notices, warnings, compared = compare(watch)
        assert compared == 1  # only config "b"
        assert len(warnings) == 1
        assert warnings[0].startswith("b ")

    def test_noise_floor_skips_missing_floor_column(self, tmp_path):
        watch = make_watch(tmp_path, [row("a", 5.0), row("a", 1.0)])
        watch = Watch(
            name=watch.name,
            path=watch.path,
            key_fields=watch.key_fields,
            columns=watch.columns,
            noise_floor=("absent", 0.05),
        )
        assert compare(watch) == ([], [], 0)


class TestReport:
    def test_empty_watchlist_never_prints_all_clear(self, tmp_path, capsys):
        # Rows exist but no configuration has both a baseline and a fresh
        # sweep: the report must say "skipped", not "within 30%".
        watch = make_watch(tmp_path, [row("a", 2.0)])
        assert report(watch) == 0
        output = capsys.readouterr().out
        assert "within 30%" not in output
        assert "skipped" in output

    def test_all_clear_names_compared_count(self, tmp_path, capsys):
        watch = make_watch(tmp_path, [row("a", 2.0), row("a", 2.0)])
        assert report(watch) == 0
        assert "1 configuration(s) compared" in capsys.readouterr().out

    def test_strict_mode_uses_error_annotations(self, tmp_path, capsys):
        watch = make_watch(tmp_path, [row("a", 2.0), row("a", 1.0)])
        assert report(watch, strict=True) == 1
        output = capsys.readouterr().out
        assert "::error::" in output
        assert "::warning::" not in output

    def test_default_mode_uses_warning_annotations(self, tmp_path, capsys):
        watch = make_watch(tmp_path, [row("a", 2.0), row("a", 1.0)])
        assert report(watch) == 1
        assert "::warning::" in capsys.readouterr().out


class TestMain:
    def test_explicit_path_warn_only_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_custom.json"
        path.write_text(
            json.dumps(
                {
                    "rows": [
                        {"scheduler": "s", "transactions": 1, "speedup_indexed": 5.0,
                         "certify_legacy_seconds": 1.0},
                        {"scheduler": "s", "transactions": 1, "speedup_indexed": 1.0,
                         "certify_legacy_seconds": 1.0},
                    ]
                }
            )
        )
        assert main([str(path)]) == 0
        assert "::warning::" in capsys.readouterr().out

    def test_fail_on_regression_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "BENCH_custom.json"
        path.write_text(
            json.dumps(
                {
                    "rows": [
                        {"scheduler": "s", "transactions": 1, "speedup_indexed": 5.0,
                         "certify_legacy_seconds": 1.0},
                        {"scheduler": "s", "transactions": 1, "speedup_indexed": 1.0,
                         "certify_legacy_seconds": 1.0},
                    ]
                }
            )
        )
        assert main(["--fail-on-regression", str(path)]) == 1
        output = capsys.readouterr().out
        assert "::error::" in output
        assert "failing" in output

    def test_fail_flag_with_clean_run_exits_zero(self, tmp_path):
        path = tmp_path / "BENCH_custom.json"
        path.write_text(
            json.dumps(
                {
                    "rows": [
                        {"scheduler": "s", "transactions": 1, "speedup_indexed": 5.0,
                         "certify_legacy_seconds": 1.0},
                        {"scheduler": "s", "transactions": 1, "speedup_indexed": 5.0,
                         "certify_legacy_seconds": 1.0},
                    ]
                }
            )
        )
        assert main(["--fail-on-regression", str(path)]) == 0

    def test_threshold_is_thirty_percent(self):
        assert THRESHOLD == pytest.approx(1.30)


class TestE15TrajectoryGuard:
    def test_shortened_rows_never_enter_the_trajectory(self, tmp_path):
        from benchmarks.bench_e15_open_system import (
            DEFAULT_ARRIVALS,
            write_bench_json,
        )

        path = tmp_path / "BENCH_e15_open_system.json"
        write_bench_json([{"arrived": 200, "commit_rate": 1.0}], path)
        assert not path.exists()
        write_bench_json(
            [{"arrived": DEFAULT_ARRIVALS, "commit_rate": 1.0}], path
        )
        assert path.exists()
