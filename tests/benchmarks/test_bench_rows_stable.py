"""Re-verification: E14/E15 sweeps still reproduce their committed rows.

The hot-loop rewrite (PR 6) must not change *what* the engine computes,
only how fast — and the strongest cross-PR witness of that is the
benchmark trajectory itself: every machine-independent column of the
E14 restart-policy storm and the E15 open-system sweep must come out
bit-identical to the rows recorded before the rewrite.  Wall-clock
columns are not part of the comparison (that is ``compare_bench``'s
noise-floored job).

The comparison targets the *latest* recorded sweep per experiment: the
trajectory files append one sweep per regeneration, and it is the most
recent one the current code claims to reproduce.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import bench_e14_restart_policies as e14
from benchmarks import bench_e15_open_system as e15


def latest_recorded_sweep(path, count):
    if not path.exists():
        pytest.skip(f"no recorded trajectory at {path}")
    rows = json.loads(path.read_text()).get("rows", [])
    if len(rows) < count:
        pytest.skip(f"{path.name} holds {len(rows)} rows; need {count}")
    return rows[-count:]


def assert_rows_match(fresh_rows, recorded_rows, columns, label_fields):
    assert len(fresh_rows) == len(recorded_rows)
    for fresh, recorded in zip(fresh_rows, recorded_rows):
        label = "/".join(str(fresh.get(field)) for field in label_fields)
        diffs = {
            column: (recorded.get(column), fresh.get(column))
            for column in columns
            if fresh.get(column) != recorded.get(column)
        }
        assert not diffs, (
            f"{label}: deterministic columns drifted from the committed "
            f"baseline (recorded, fresh): {diffs}"
        )


class TestCommittedSweepsReproduce:
    def test_e14_restart_policy_rows_are_bit_identical(self):
        fresh = e14.run_experiment()
        recorded = latest_recorded_sweep(e14.BENCH_JSON, len(fresh))
        # Every E14 column is a pure function of the scenario spec: counts,
        # tick-derived ratios and certification verdicts.
        assert_rows_match(fresh, recorded, e14.COLUMNS, ("policy",))

    def test_e15_open_system_rows_are_bit_identical(self):
        if e15.ARRIVALS != e15.DEFAULT_ARRIVALS:
            pytest.skip("REPRO_E15_ARRIVALS overrides the recorded scenario size")
        fresh = e15.run_experiment()
        recorded = latest_recorded_sweep(e15.BENCH_JSON, len(fresh))
        assert_rows_match(fresh, recorded, e15.COLUMNS, ("scheduler", "arrival"))
