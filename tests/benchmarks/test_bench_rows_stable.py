"""Re-verification: E14/E15 sweeps still reproduce their committed rows.

The hot-loop rewrite (PR 6) must not change *what* the engine computes,
only how fast — and the strongest cross-PR witness of that is the
benchmark trajectory itself: every machine-independent column of the
E14 restart-policy storm and the E15 open-system sweep must come out
bit-identical to the rows recorded before the rewrite.  Wall-clock
columns are not part of the comparison (that is ``compare_bench``'s
noise-floored job).

Two E15 comparisons run since certification went online (this PR):

* against the *latest* recorded sweep — full-column bit-identity,
  including the ``serialisable`` verdict the streaming certifier now
  stamps on every row;
* against the *first* recorded sweep — the pre-streaming baseline —
  over every column except the ones this PR legitimately changed
  (``serialisable`` did not exist, and the live-state gauge now counts
  the certifier's retained window).  Everything else matching
  bit-for-bit is the cross-PR proof that ``certify="stream"`` is a pure
  observer: it never steers the engine it watches.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import bench_e14_restart_policies as e14
from benchmarks import bench_e15_open_system as e15

#: E15 columns whose values this PR changed on purpose: ``serialisable``
#: is new, and the live-state gauge now includes the streaming
#: certifier's retained window.
E15_STREAMING_COLUMNS = ("serialisable", "live_state_peak", "live_state_ratio")


def recorded_sweep(path, count, *, latest=True):
    if not path.exists():
        pytest.skip(f"no recorded trajectory at {path}")
    rows = json.loads(path.read_text()).get("rows", [])
    if len(rows) < count:
        pytest.skip(f"{path.name} holds {len(rows)} rows; need {count}")
    return rows[-count:] if latest else rows[:count]


def assert_rows_match(fresh_rows, recorded_rows, columns, label_fields):
    assert len(fresh_rows) == len(recorded_rows)
    for fresh, recorded in zip(fresh_rows, recorded_rows):
        label = "/".join(str(fresh.get(field)) for field in label_fields)
        diffs = {
            column: (recorded.get(column), fresh.get(column))
            for column in columns
            if fresh.get(column) != recorded.get(column)
        }
        assert not diffs, (
            f"{label}: deterministic columns drifted from the committed "
            f"baseline (recorded, fresh): {diffs}"
        )


@pytest.fixture(scope="module")
def e15_fresh_rows():
    if e15.ARRIVALS != e15.DEFAULT_ARRIVALS:
        pytest.skip("REPRO_E15_ARRIVALS overrides the recorded scenario size")
    return e15.run_experiment()


class TestCommittedSweepsReproduce:
    def test_e14_restart_policy_rows_are_bit_identical(self):
        fresh = e14.run_experiment()
        recorded = recorded_sweep(e14.BENCH_JSON, len(fresh))
        # Every E14 column is a pure function of the scenario spec: counts,
        # tick-derived ratios and certification verdicts.
        assert_rows_match(fresh, recorded, e14.COLUMNS, ("policy",))

    def test_e15_open_system_rows_are_bit_identical(self, e15_fresh_rows):
        recorded = recorded_sweep(e15.BENCH_JSON, len(e15_fresh_rows))
        assert_rows_match(
            e15_fresh_rows, recorded, e15.COLUMNS, ("scheduler", "arrival")
        )

    def test_e15_streaming_certifier_never_steered_the_engine(self, e15_fresh_rows):
        """Certified rows equal the pre-streaming baseline sweep.

        The first recorded E15 sweep ran with ``certify=False`` (before
        the streaming certifier existed).  Apart from the columns the
        certifier *adds* (:data:`E15_STREAMING_COLUMNS`), today's
        ``certify="stream"`` rows must reproduce it bit-for-bit.  The
        comparison covers the configurations that sweep actually ran —
        the modular scheduler only joined the grid once its coordinator
        GC landed, so its rows have no pre-streaming baseline.
        """
        all_rows = json.loads(e15.BENCH_JSON.read_text()).get("rows", [])
        first_sweep: dict[tuple, dict] = {}
        for row in all_rows:
            key = (row.get("scheduler"), row.get("arrival"))
            if key in first_sweep:
                break  # a repeated configuration starts the second sweep
            first_sweep[key] = row
        fresh = [
            row
            for row in e15_fresh_rows
            if (row.get("scheduler"), row.get("arrival")) in first_sweep
        ]
        if len(fresh) < len(first_sweep):
            pytest.skip("current grid no longer covers the baseline sweep")
        recorded = [
            first_sweep[(row.get("scheduler"), row.get("arrival"))] for row in fresh
        ]
        columns = [
            column for column in e15.COLUMNS if column not in E15_STREAMING_COLUMNS
        ]
        assert_rows_match(fresh, recorded, columns, ("scheduler", "arrival"))
